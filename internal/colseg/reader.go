package colseg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"sync"
	"time"

	"repro/internal/binenc"
	"repro/internal/trace"
	"repro/internal/units"
)

// Reader streams the jobs of one colseg segment in order, implementing
// trace.Source. Blocks decode one at a time — each CRC-verified before
// a single column is parsed — into a batch the reader hands out job by
// job; the batch is freshly allocated per block, so callers may retain
// returned pointers (WithVolatileBatch opts out for scan loops that
// don't). Corrupt or truncated input fails with an error, never a
// panic, and a latched error repeats on every subsequent Next.
type Reader struct {
	br   *bufio.Reader
	meta trace.Meta
	err  error

	began    bool
	volatile bool

	jobs []trace.Job
	i    int

	payload []byte
	sc      *scratch

	prune          bool
	fromSec, toSec int64

	blocksRead   int
	blocksPruned int

	lastOff  int
	lastZone *time.Location
}

// Option tunes a Reader.
type Option func(*Reader)

// WithTimeRange restricts the scan to blocks that may contain jobs
// submitted in [from, to]: blocks whose zone map lies wholly outside
// the range are skipped without being decoded or CRC-verified. Pruning
// is conservative at second granularity — the reader still yields every
// job of a kept block, including jobs outside the range near its edges;
// callers filter exactly, the reader only skips I/O-and-decode work.
func WithTimeRange(from, to time.Time) Option {
	return func(r *Reader) {
		r.prune = true
		r.fromSec = from.Unix()
		r.toSec = to.Unix()
	}
}

// WithVolatileBatch makes the reader reuse one decode batch across
// blocks: each job handed out by Next is valid only until the Next call
// that crosses into the following block (or returns EOF or an error).
// Scan loops that fold every job into an aggregate and move on — the
// disk-scan analysis path — opt in to skip a batch allocation (and its
// GC scanning) per block; anything that retains *Job pointers, like
// trace.Collect, must not. Strings are unaffected: a job's name and
// paths stay valid forever either way. Volatile readers draw their
// batch from a shared pool, so a scan over many single-block segments
// recycles one batch across all of them.
func WithVolatileBatch() Option {
	return func(r *Reader) { r.volatile = true }
}

// scratch is the per-block decode state: the job batch and the column
// value arrays. A plain reader allocates its own (fresh job batches,
// reader-local columns); volatile readers recycle whole bundles
// through scratchPool across blocks, readers, and goroutines.
type scratch struct {
	jobs   []trace.Job
	secs   []int64
	nanos  []uint64
	uvals  []uint64
	ivals  []int64
	ivals2 []int64
	spans  []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// brPool recycles the max-block-sized bufio buffers: a shard-parallel
// scan opens one reader per segment, and a fresh 1MiB buffer per open
// would be the scan's dominant allocation. Buffers return to the pool
// at stream end (EOF or error); nothing a decode hands out points into
// them.
var brPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, maxBlockBytes) }}

// grow sizes the column arrays for an n-job block.
func (sc *scratch) grow(n int) {
	if cap(sc.secs) < n {
		sc.secs = make([]int64, n)
		sc.nanos = make([]uint64, n)
		sc.uvals = make([]uint64, n)
		sc.ivals = make([]int64, n)
		sc.ivals2 = make([]int64, n)
	}
}

// ensureScratch lazily attaches decode state: pooled for volatile
// readers, owned otherwise.
func (r *Reader) ensureScratch() *scratch {
	if r.sc == nil {
		if r.volatile {
			r.sc = scratchPool.Get().(*scratch)
		} else {
			r.sc = new(scratch)
		}
	}
	return r.sc
}

// release returns the pooled buffer (and, for volatile readers, the
// decode scratch) once the stream is over. The jobs batch of a volatile
// reader is dropped alongside: handed-out volatile pointers expired
// with the Next call that ended the stream. A non-volatile reader's
// final batch survives — its jobs were freshly allocated and callers
// may hold pointers into it.
func (r *Reader) release() {
	if r.br != nil {
		r.br.Reset(nil)
		brPool.Put(r.br)
		r.br = nil
	}
	if r.volatile && r.sc != nil {
		scratchPool.Put(r.sc)
		r.jobs = nil
	}
	r.sc = nil
}

// NewReader returns a Reader over r carrying the trace metadata meta
// (segments store no metadata; the manifest owns it, exactly as with
// JSONL segments).
func NewReader(rd io.Reader, meta trace.Meta, opts ...Option) *Reader {
	// The buffer is one max-sized block: an ordinary frame is decoded
	// in place from the buffer (Peek) without a payload copy.
	br := brPool.Get().(*bufio.Reader)
	br.Reset(rd)
	r := &Reader{br: br, meta: meta}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Meta returns the trace metadata.
func (r *Reader) Meta() trace.Meta { return r.meta }

// BlocksRead returns how many blocks have been decoded so far.
func (r *Reader) BlocksRead() int { return r.blocksRead }

// BlocksPruned returns how many blocks the zone maps skipped.
func (r *Reader) BlocksPruned() int { return r.blocksPruned }

// Close releases the reader's pooled buffers without draining the
// stream. A scan abandoned mid-segment — a handler error on a sibling
// shard, a disconnected client — must Close so the max-block bufio
// buffer returns to the pool; a stream read to EOF or error has
// already released and Close is a no-op. The reader is unusable after:
// any subsequent Next reports the latched error.
func (r *Reader) Close() error {
	if r.err == nil {
		r.err = errClosed
		r.release()
	}
	return nil
}

// errClosed is the latched error after an explicit Close.
var errClosed = fmt.Errorf("colseg: reader closed")

// Next returns the next job, or io.EOF at end of segment.
func (r *Reader) Next() (*trace.Job, error) {
	for {
		if r.i < len(r.jobs) {
			j := &r.jobs[r.i]
			r.i++
			return j, nil
		}
		if r.err != nil {
			return nil, r.err
		}
		if err := r.loadBlock(); err != nil {
			r.err = err
			r.release()
			return nil, err
		}
	}
}

// loadBlock reads frames until one survives pruning and decodes, or the
// segment ends (io.EOF).
func (r *Reader) loadBlock() error {
	if !r.began {
		if err := r.readHeader(); err != nil {
			return err
		}
		r.began = true
	}
	for {
		frameLen, err := binary.ReadUvarint(r.br)
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			return fmt.Errorf("colseg: reading block frame length: %w", err)
		}
		if frameLen < 5 {
			return fmt.Errorf("colseg: block frame of %d bytes is shorter than its checksum", frameLen)
		}
		if r.prune && r.shouldPrune(frameLen) {
			if err := discard(r.br, frameLen); err != nil {
				return fmt.Errorf("colseg: skipping pruned block: %w", err)
			}
			r.blocksPruned++
			continue
		}
		if frameLen <= uint64(r.br.Size()) {
			// Common case: the frame fits the read buffer, so decode it in
			// place. Nothing survives decodeBlock that points into the
			// peeked bytes — strings are copied out via the dictionary
			// blob — so the frame can be discarded immediately after.
			payload, err := r.br.Peek(int(frameLen))
			if err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return fmt.Errorf("colseg: reading block: %w", err)
			}
			derr := r.decodeBlock(payload)
			if _, err := r.br.Discard(int(frameLen)); derr == nil && err != nil {
				derr = fmt.Errorf("colseg: reading block: %w", err)
			}
			if derr != nil {
				return derr
			}
		} else {
			// A frame larger than the buffer (a block carrying
			// multi-megabyte strings) takes the copying path.
			payload, err := readFull(r.br, frameLen, r.payload)
			if err != nil {
				return fmt.Errorf("colseg: reading block: %w", err)
			}
			r.payload = payload
			if err := r.decodeBlock(payload); err != nil {
				return err
			}
		}
		r.blocksRead++
		return nil
	}
}

// readHeader validates the segment magic and version.
func (r *Reader) readHeader() error { return readSegmentHeader(r.br) }

// readSegmentHeader validates the segment magic and version at the
// start of br — shared by the streaming Reader and the FrameScanner.
func readSegmentHeader(br *bufio.Reader) error {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("colseg: reading segment header: %w", err)
	}
	if string(magic[:]) != Magic {
		return fmt.Errorf("colseg: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("colseg: reading segment version: %w", err)
	}
	if version != Version {
		return fmt.Errorf("colseg: unsupported segment version %d", version)
	}
	return nil
}

// shouldPrune peeks the block's zone-map stats (without consuming or
// CRC-verifying the frame) and reports whether the block lies wholly
// outside the requested range.
func (r *Reader) shouldPrune(frameLen uint64) bool {
	return shouldPruneFrame(r.br, frameLen, r.fromSec, r.toSec)
}

// shouldPruneFrame peeks the next frame's zone-map stats (without
// consuming or CRC-verifying it) and reports whether the block lies
// wholly outside [fromSec, toSec]. Unparseable stats never prune: the
// full decode path then surfaces the corruption as an error.
func shouldPruneFrame(br *bufio.Reader, frameLen uint64, fromSec, toSec int64) bool {
	// 4 CRC bytes + 3 varints of up to 10 bytes each, plus the jobs
	// uvarint: 44 bytes always covers the stats.
	peek := int(frameLen)
	if peek > 44 {
		peek = 44
	}
	b, err := br.Peek(peek)
	if err != nil {
		return false
	}
	rd := binenc.NewReader(b[4:])
	rd.Uvarint() // jobs
	minSec := rd.Varint()
	maxSec := rd.Varint()
	if rd.Err() != nil {
		return false
	}
	return maxSec < fromSec || minSec > toSec
}

// decodeBlock verifies payload's checksum and decodes its columns into
// a fresh job batch. The column loops decode varints directly from the
// body with a one-byte fast path instead of going through binenc's
// Reader — this is the hottest loop of every disk scan, and the
// per-value method-call and error-check overhead is what the columnar
// format exists to avoid. Corruption still cannot pass silently: the
// CRC already vouched for the bytes, and the raw loops fail (never
// panic) on any structural mismatch, exactly like the Reader would.
func (r *Reader) decodeBlock(payload []byte) error {
	want := binary.LittleEndian.Uint32(payload[:4])
	body := payload[4:]
	if got := crc32.Checksum(body, castagnoli); got != want {
		return fmt.Errorf("colseg: block CRC mismatch (%08x vs %08x)", got, want)
	}
	rd := binenc.NewReader(body)
	// Every job costs at least one byte per column, so Count bounds the
	// batch allocation a corrupt count could demand.
	n := rd.Count(numCols)
	rd.Varint() // minSubmitSec (zone map; not needed to decode)
	rd.Varint() // maxSubmitSec
	dictN := rd.Count(1)
	if rd.Err() != nil {
		return fmt.Errorf("colseg: corrupt block header: %w", rd.Err())
	}
	blob, spans, off, ok := r.readDict(body, len(body)-rd.Remaining(), dictN)
	if !ok {
		return fmt.Errorf("colseg: corrupt block dictionary")
	}

	sc := r.ensureScratch()
	var jobs []trace.Job
	if r.volatile && n <= cap(sc.jobs) {
		// Every column loop assigns every field of every job, so a
		// reused batch needs no clearing.
		jobs = sc.jobs[:n]
	} else {
		jobs = make([]trace.Job, n)
		if r.volatile {
			sc.jobs = jobs
		}
	}
	sc.grow(n)
	secs, nanos := sc.secs[:n], sc.nanos[:n]
	uvals, ivals, ivals2 := sc.uvals[:n], sc.ivals[:n], sc.ivals2[:n]

	// The column loops below are fused: each pass over the jobs batch
	// fills several fields at once, so the batch — the widest data the
	// decode touches — is streamed through the cache a few times instead
	// of once per column.

	// Pass 1: IDs (delta varints) and names (dictionary references).
	if off, ok = readVarints(ivals, body, off); !ok {
		return fmt.Errorf("colseg: corrupt id column")
	}
	if off, ok = readUvarints(uvals, body, off); !ok {
		return fmt.Errorf("colseg: corrupt name column")
	}
	var id int64
	for i := range jobs {
		id += ivals[i]
		jobs[i].ID = id
		ref := uvals[i]
		if ref == 0 {
			jobs[i].Name = ""
			continue
		}
		if ref > uint64(dictN) {
			return fmt.Errorf("colseg: dictionary reference out of range")
		}
		jobs[i].Name = blob[spans[2*ref-2]:spans[2*ref-1]]
	}

	// Pass 2: submit times from the three time columns (delta seconds,
	// fixed 4-byte nanosecond-of-second, zone offset).
	if off, ok = readVarints(ivals, body, off); !ok {
		return fmt.Errorf("colseg: corrupt submit-seconds column")
	}
	var sec int64
	for i := range secs {
		sec += ivals[i]
		secs[i] = sec
	}
	if len(body)-off < 4*n {
		return fmt.Errorf("colseg: truncated submit-nanos column")
	}
	nsCol := body[off : off+4*n]
	off += 4 * n
	if off, ok = readVarints(ivals, body, off); !ok {
		return fmt.Errorf("colseg: corrupt zone-offset column")
	}
	for i := range jobs {
		ns := binary.LittleEndian.Uint32(nsCol[4*i:])
		if ns >= 1e9 {
			return fmt.Errorf("colseg: submit nanoseconds out of range")
		}
		jobs[i].SubmitTime = r.inZone(time.Unix(secs[i], int64(ns)), int(ivals[i]))
	}

	// Pass 3: the six consecutive fixed 8-byte columns — duration, the
	// three byte counts, and the two task-time floats — read strided
	// from the body in one loop.
	if len(body)-off < 8*6*n {
		return fmt.Errorf("colseg: truncated fixed-width columns")
	}
	wide := body[off : off+8*6*n]
	d1, d2, d3, d4, d5 := 8*n, 16*n, 24*n, 32*n, 40*n
	for i := range jobs {
		o := 8 * i
		jobs[i].Duration = time.Duration(binary.LittleEndian.Uint64(wide[o:]))
		jobs[i].InputBytes = unitsBytes(int64(binary.LittleEndian.Uint64(wide[d1+o:])))
		jobs[i].ShuffleBytes = unitsBytes(int64(binary.LittleEndian.Uint64(wide[d2+o:])))
		jobs[i].OutputBytes = unitsBytes(int64(binary.LittleEndian.Uint64(wide[d3+o:])))
		jobs[i].MapTime = unitsTaskSeconds(math.Float64frombits(binary.LittleEndian.Uint64(wide[d4+o:])))
		jobs[i].ReduceTime = unitsTaskSeconds(math.Float64frombits(binary.LittleEndian.Uint64(wide[d5+o:])))
	}
	off += 8 * 6 * n

	// Pass 4: task counts and the two path reference columns.
	if off, ok = readVarints(ivals, body, off); !ok {
		return fmt.Errorf("colseg: corrupt map-tasks column")
	}
	if off, ok = readVarints(ivals2, body, off); !ok {
		return fmt.Errorf("colseg: corrupt reduce-tasks column")
	}
	if off, ok = readUvarints(uvals, body, off); !ok {
		return fmt.Errorf("colseg: corrupt input-path column")
	}
	if off, ok = readUvarints(nanos, body, off); !ok {
		return fmt.Errorf("colseg: corrupt output-path column")
	}
	for i := range jobs {
		jobs[i].MapTasks = int(ivals[i])
		jobs[i].ReduceTasks = int(ivals2[i])
		in, out := uvals[i], nanos[i]
		if in > uint64(dictN) || out > uint64(dictN) {
			return fmt.Errorf("colseg: dictionary reference out of range")
		}
		if in == 0 {
			jobs[i].InputPath = ""
		} else {
			jobs[i].InputPath = blob[spans[2*in-2]:spans[2*in-1]]
		}
		if out == 0 {
			jobs[i].OutputPath = ""
		} else {
			jobs[i].OutputPath = blob[spans[2*out-2]:spans[2*out-1]]
		}
	}

	if off != len(body) {
		return fmt.Errorf("colseg: %d trailing bytes after block columns", len(body)-off)
	}
	r.jobs = jobs
	r.i = 0
	return nil
}

// readDict parses dictN length-prefixed strings starting at off. All
// entries of a block share one string allocation — the blob, a
// substring of the block body — and entry k is the blob slice between
// spans[2k] and spans[2k+1], materialized only when a job references
// it. A block whose jobs carry mostly-unique names or paths therefore
// costs one allocation and no per-entry pointer stores; the span slice
// is reader scratch, reused across blocks (the strings themselves are
// immutable and safe to retain).
func (r *Reader) readDict(body []byte, off, dictN int) (string, []int32, int, bool) {
	sc := r.ensureScratch()
	if cap(sc.spans) < 2*dictN {
		sc.spans = make([]int32, 2*dictN)
	}
	spans := sc.spans[:2*dictN]
	start := off
	for i := 0; i < dictN; i++ {
		var n uint64
		if off < len(body) && body[off] < 0x80 {
			n = uint64(body[off])
			off++
		} else {
			v, sz := binary.Uvarint(body[off:])
			if sz <= 0 {
				return "", nil, 0, false
			}
			n = v
			off += sz
		}
		if n > uint64(len(body)-off) {
			return "", nil, 0, false
		}
		// Blob-relative span; int32 is ample, a block body caps at ~1MiB.
		spans[2*i] = int32(off - start)
		off += int(n)
		spans[2*i+1] = int32(off - start)
	}
	blob := string(body[start:off])
	return blob, spans, off, true
}

// readVarints decodes len(dst) zigzag varints from b starting at off,
// with the continuation loop inlined (no binary.Uvarint call): this and
// readUvarints are the hottest loops of a disk scan. Returns the new
// offset and whether every value decoded. Inputs reach these loops only
// after the block CRC verified, so a malformed varint means scan
// corruption and simply reports false.
func readVarints(dst []int64, b []byte, off int) (int, bool) {
	n := len(b)
	for i := 0; i < len(dst); {
		if n-off >= 8 {
			// Load 8 bytes once and locate the terminator byte (high bit
			// clear) with bit tricks; varints to 8 bytes (56 bits — every
			// delta column in practice) decode without per-byte loads or
			// bounds checks.
			x := binary.LittleEndian.Uint64(b[off:])
			if x&0x8080808080808080 == 0 && len(dst)-i >= 8 {
				// Eight consecutive single-byte varints — the common shape
				// of delta, count, and reference columns — decode from the
				// one load.
				for k := 0; k < 8; k++ {
					v := x >> (8 * k) & 0xff
					dst[i+k] = int64(v>>1) ^ -int64(v&1)
				}
				i += 8
				off += 8
				continue
			}
			if x&0x80 == 0 {
				dst[i] = int64(x&0x7f)>>1 ^ -int64(x&1)
				i++
				off++
				continue
			}
			if x&0x8000 == 0 {
				u := x&0x7f | x>>1&0x3f80
				dst[i] = int64(u>>1) ^ -int64(u&1)
				i++
				off += 2
				continue
			}
			if m := ^x & 0x8080808080808080; m != 0 {
				k := bits.TrailingZeros64(m) >> 3 // terminator byte index; length k+1
				u := compact7(x, k)
				off += k + 1
				dst[i] = int64(u>>1) ^ -int64(u&1)
				i++
				continue
			}
		}
		u, sz := binary.Uvarint(b[off:])
		if sz <= 0 {
			return off, false
		}
		off += sz
		dst[i] = int64(u>>1) ^ -int64(u&1)
		i++
	}
	return off, true
}

// compact7 extracts the value of a varint whose k+1 encoded bytes
// (terminator at byte index k, k ≤ 7) sit in the low bytes of the
// 64-bit load x: mask to the varint's bytes, clear the continuation
// bits, then fold the eight 7-bit groups together in three fixed
// shift-mask steps — no data-dependent loop, so the branch predictor
// sees one pattern regardless of each value's length.
func compact7(x uint64, k int) uint64 {
	x &= uint64(1)<<(8*(k+1)) - 1 // k=7: shift by 64 is 0, so the mask is all ones
	x &= 0x7f7f7f7f7f7f7f7f
	x = x&0x007f007f007f007f | (x&0x7f007f007f007f00)>>1
	x = x&0x00003fff00003fff | (x&0x3fff00003fff0000)>>2
	x = x&0x000000000fffffff | (x&0x0fffffff00000000)>>4
	return x
}

// readUvarints is readVarints without the zigzag step.
func readUvarints(dst []uint64, b []byte, off int) (int, bool) {
	n := len(b)
	for i := 0; i < len(dst); {
		if n-off >= 8 {
			x := binary.LittleEndian.Uint64(b[off:])
			if x&0x8080808080808080 == 0 && len(dst)-i >= 8 {
				for k := 0; k < 8; k++ {
					dst[i+k] = x >> (8 * k) & 0xff
				}
				i += 8
				off += 8
				continue
			}
			if x&0x80 == 0 {
				dst[i] = x & 0x7f
				i++
				off++
				continue
			}
			if x&0x8000 == 0 {
				dst[i] = x&0x7f | x>>1&0x3f80
				i++
				off += 2
				continue
			}
			if m := ^x & 0x8080808080808080; m != 0 {
				k := bits.TrailingZeros64(m) >> 3
				dst[i] = compact7(x, k)
				off += k + 1
				i++
				continue
			}
		}
		u, sz := binary.Uvarint(b[off:])
		if sz <= 0 {
			return off, false
		}
		dst[i] = u
		off += sz
		i++
	}
	return off, true
}

// inZone restores the job's zone representation: offset 0 is UTC (the
// generated traces and every "Z" timestamp), other offsets get a fixed
// zone cached per offset so a block of same-zone jobs allocates one
// Location, not one per job.
func (r *Reader) inZone(t time.Time, off int) time.Time {
	if off == 0 {
		return t.UTC()
	}
	if r.lastZone == nil || off != r.lastOff {
		r.lastOff = off
		r.lastZone = time.FixedZone("", off)
	}
	return t.In(r.lastZone)
}

// discard consumes n bytes of a pruned frame.
func discard(br *bufio.Reader, n uint64) error {
	for n > 0 {
		step := n
		const max = 1 << 30
		if step > max {
			step = max
		}
		if _, err := br.Discard(int(step)); err != nil {
			return err
		}
		n -= step
	}
	return nil
}

// readFull reads exactly n bytes into buf (reusing its capacity),
// growing in bounded chunks so a corrupt frame length cannot demand an
// absurd allocation before the bytes exist.
func readFull(br *bufio.Reader, n uint64, buf []byte) ([]byte, error) {
	if uint64(cap(buf)) >= n {
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		return buf, nil
	}
	buf = buf[:0]
	const chunk = 1 << 20
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// unitsBytes and unitsTaskSeconds are conversion shims keeping the
// column loops free of package-qualified casts.
func unitsBytes(v int64) units.Bytes { return units.Bytes(v) }

func unitsTaskSeconds(v float64) units.TaskSeconds { return units.TaskSeconds(v) }
