package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const sampleTrend = `{
  "benchmark": "BenchmarkParallelAnalyze",
  "acceptance": "speedup > 1.5x",
  "datapoints": [
    {"date": "2026-07-28", "speedup_numcpu": 1.0}
  ]
}`

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelAnalyze/K=1-4         	       3	  21636837 ns/op	 6118202 B/op	   39083 allocs/op
BenchmarkParallelAnalyze/K=2-4         	       3	  14159707 ns/op	 6612458 B/op	   40076 allocs/op
BenchmarkParallelAnalyze/K=NumCPU(4)-4 	       3	   9627556 ns/op	 6967050 B/op	   40443 allocs/op
PASS
`

func TestAppendDatapoint(t *testing.T) {
	now := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	grown, summary, err := appendDatapoint([]byte(sampleTrend), []byte(sampleBench), now, "go1.24.0", "ci trend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "speedup 2.25x") {
		t.Errorf("summary %q lacks the speedup", summary)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["acceptance"] != "speedup > 1.5x" {
		t.Error("existing fields not preserved")
	}
	points := doc["datapoints"].([]any)
	if len(points) != 2 {
		t.Fatalf("got %d datapoints, want 2", len(points))
	}
	dp := points[1].(map[string]any)
	for key, want := range map[string]any{
		"date":              "2026-08-01",
		"go":                "go1.24.0",
		"cpus":              4.0, // JSON numbers decode as float64
		"k1_ns_per_op":      21636837.0,
		"k2_ns_per_op":      14159707.0,
		"k4_ns_per_op":      9627556.0, // NumCPU(4) doubles as the K=4 result
		"knumcpu_ns_per_op": 9627556.0,
		"speedup_numcpu":    2.25,
		"cpu":               "Intel(R) Xeon(R) Processor @ 2.10GHz",
		"note":              "ci trend",
	} {
		if dp[key] != want {
			t.Errorf("datapoint[%q] = %v, want %v", key, dp[key], want)
		}
	}
}

func TestAppendDatapointRejectsTruncatedOutput(t *testing.T) {
	if _, _, err := appendDatapoint([]byte(sampleTrend), []byte("PASS\n"), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("empty benchmark output did not error")
	}
	partial := "BenchmarkParallelAnalyze/K=2-4   3   14159707 ns/op\n"
	if _, _, err := appendDatapoint([]byte(sampleTrend), []byte(partial), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("output without K=1/K=NumCPU did not error")
	}
}

func TestCheckSpeedup(t *testing.T) {
	trend := func(cpus int, speedup float64) []byte {
		b, _ := json.Marshal(map[string]any{"datapoints": []any{
			map[string]any{"cpus": cpus, "speedup_numcpu": speedup},
		}})
		return b
	}
	if err := checkSpeedup(trend(4, 2.1), 1.5); err != nil {
		t.Errorf("2.1x on 4 cores failed the 1.5x bar: %v", err)
	}
	if err := checkSpeedup(trend(4, 1.2), 1.5); err == nil {
		t.Error("1.2x on 4 cores passed the 1.5x bar")
	}
	if err := checkSpeedup(trend(1, 1.0), 1.5); err != nil {
		t.Errorf("single-core machine not exempt: %v", err)
	}
	if err := checkSpeedup(trend(4, 1.0), 0); err != nil {
		t.Errorf("disabled bar failed: %v", err)
	}
}

const sampleServeTrend = `{
  "benchmark": "BenchmarkServeReport",
  "datapoints": [
    {"date": "2026-07-28", "cold_ns_per_op": 19625480}
  ]
}`

const sampleServeBench = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStoreColdReport/memory-4       	       3	   7394871 ns/op
BenchmarkStoreColdReport/disk-4         	       3	   8845664 ns/op
BenchmarkStoreColdReport/disk-scan-4    	       3	  54531950 ns/op
PASS
`

func TestAppendServeDatapoint(t *testing.T) {
	now := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	grown, summary, err := appendServeDatapoint([]byte(sampleServeTrend), []byte(sampleServeBench), now, "go1.24.0", "ci trend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "restart overhead 1.2") {
		t.Errorf("summary %q lacks the overhead ratio", summary)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	points := doc["datapoints"].([]any)
	if len(points) != 2 {
		t.Fatalf("got %d datapoints, want 2", len(points))
	}
	dp := points[1].(map[string]any)
	for key, want := range map[string]any{
		"date":                "2026-08-01",
		"memory_ns_per_op":    7394871.0,
		"disk_ns_per_op":      8845664.0,
		"disk_scan_ns_per_op": 54531950.0,
		"restart_overhead":    1.2,
		"cpu":                 "Intel(R) Xeon(R) Processor @ 2.10GHz",
	} {
		if dp[key] != want {
			t.Errorf("datapoint[%q] = %v, want %v", key, dp[key], want)
		}
	}
}

func TestAppendServeDatapointRejectsTruncated(t *testing.T) {
	partial := "BenchmarkStoreColdReport/memory-4   3   7394871 ns/op\n"
	if _, _, err := appendServeDatapoint([]byte(sampleServeTrend), []byte(partial), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("output without the disk result did not error")
	}
}

func TestCheckRestartOverhead(t *testing.T) {
	trend := func(overhead float64) []byte {
		b, _ := json.Marshal(map[string]any{"datapoints": []any{
			map[string]any{"restart_overhead": overhead},
		}})
		return b
	}
	if err := checkRestartOverhead(trend(1.3), 3); err != nil {
		t.Errorf("1.3x failed the 3x bar: %v", err)
	}
	if err := checkRestartOverhead(trend(4.2), 3); err == nil {
		t.Error("4.2x passed the 3x bar")
	}
	if err := checkRestartOverhead(trend(9.9), 0); err != nil {
		t.Errorf("disabled bar failed: %v", err)
	}
}

const sampleScanTrend = `{
  "benchmark": "BenchmarkSegmentScan",
  "acceptance": "colseg disk scan >= 10x the JSONL baseline",
  "datapoints": []
}`

const sampleScanBench = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSegmentScan/jsonl-4   	      20	  57633511 ns/op	 299.61 MB/s	     68581 jobs/scan	  17267322 segbytes
BenchmarkSegmentScan/colseg-4  	      20	   5488495 ns/op	1043.59 MB/s	     68581 jobs/scan	   5727758 segbytes
PASS
`

func TestAppendScanDatapoint(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	grown, summary, err := appendScanDatapoint([]byte(sampleScanTrend), []byte(sampleScanBench), now, "go1.24.0", "ci trend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "scan speedup 10.50x") {
		t.Errorf("summary %q lacks the speedup", summary)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["acceptance"] != "colseg disk scan >= 10x the JSONL baseline" {
		t.Error("existing fields not preserved")
	}
	points := doc["datapoints"].([]any)
	if len(points) != 1 {
		t.Fatalf("got %d datapoints, want 1", len(points))
	}
	dp := points[0].(map[string]any)
	for key, want := range map[string]any{
		"date":              "2026-08-08",
		"go":                "go1.24.0",
		"jsonl_ns_per_op":   57633511.0,
		"colseg_ns_per_op":  5488495.0,
		"scan_speedup":      10.5,
		"jsonl_seg_bytes":   17267322.0,
		"colseg_seg_bytes":  5727758.0,
		"compression_ratio": 3.01,
		"cpu":               "Intel(R) Xeon(R) Processor @ 2.10GHz",
		"note":              "ci trend",
	} {
		if dp[key] != want {
			t.Errorf("datapoint[%q] = %v, want %v", key, dp[key], want)
		}
	}
}

func TestAppendScanDatapointRejectsTruncated(t *testing.T) {
	if _, _, err := appendScanDatapoint([]byte(sampleScanTrend), []byte("PASS\n"), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("empty benchmark output did not error")
	}
	partial := "BenchmarkSegmentScan/jsonl-4   20   57633511 ns/op   299.61 MB/s   68581 jobs/scan   17267322 segbytes\n"
	if _, _, err := appendScanDatapoint([]byte(sampleScanTrend), []byte(partial), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("output without the colseg result did not error")
	}
	// A result line missing its segbytes metric is as truncated as a
	// missing line: the datapoint needs both sizes.
	noMetric := "BenchmarkSegmentScan/jsonl-4   20   57633511 ns/op\n" +
		"BenchmarkSegmentScan/colseg-4   20   5488495 ns/op\n"
	if _, _, err := appendScanDatapoint([]byte(sampleScanTrend), []byte(noMetric), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("output without segbytes metrics did not error")
	}
}

func TestCheckScanSpeedup(t *testing.T) {
	trend := func(speedup float64) []byte {
		b, _ := json.Marshal(map[string]any{"datapoints": []any{
			map[string]any{"scan_speedup": speedup},
		}})
		return b
	}
	if err := checkScanSpeedup(trend(10.5), 10); err != nil {
		t.Errorf("10.5x failed the 10x bar: %v", err)
	}
	if err := checkScanSpeedup(trend(4.5), 10); err == nil {
		t.Error("4.5x passed the 10x bar")
	}
	if err := checkScanSpeedup(trend(1.0), 0); err != nil {
		t.Errorf("disabled bar failed: %v", err)
	}
}

// The compaction and parallel-strategy companions ride on the scan
// datapoint when their benchmarks ran in the same output.
func TestAppendScanDatapointWithCompanions(t *testing.T) {
	bench := sampleScanBench +
		"BenchmarkFragmentedScan/fragmented-4   50   295155 ns/op   31.00 blocks   31.00 segments\n" +
		"BenchmarkFragmentedScan/compacted-4    50    55542 ns/op    1.000 blocks   1.000 segments\n" +
		"BenchmarkParallelScan/segment-4        20   31023497 ns/op\n" +
		"BenchmarkParallelScan/block-4          20   10341165 ns/op\n"
	grown, summary, err := appendScanDatapoint([]byte(sampleScanTrend), []byte(bench), time.Now(), "go1.24.0", "ci trend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "compacted scan") || !strings.Contains(summary, "block-parallel") {
		t.Errorf("summary %q lacks the companion ratios", summary)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	dp := doc["datapoints"].([]any)[0].(map[string]any)
	for key, want := range map[string]any{
		"fragmented_ns_per_op":       295155.0,
		"compacted_ns_per_op":        55542.0,
		"compaction_speedup":         5.31,
		"segment_parallel_ns_per_op": 31023497.0,
		"block_parallel_ns_per_op":   10341165.0,
		"block_parallel_speedup":     3.0,
		"scan_cpus":                  4.0,
	} {
		if dp[key] != want {
			t.Errorf("datapoint[%q] = %v, want %v", key, dp[key], want)
		}
	}
	// Codec-only output still works: no companion fields, no error.
	grown, _, err = appendScanDatapoint([]byte(sampleScanTrend), []byte(sampleScanBench), time.Now(), "go1.24.0", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	dp = doc["datapoints"].([]any)[0].(map[string]any)
	if _, ok := dp["compaction_speedup"]; ok {
		t.Error("codec-only output grew compaction fields")
	}
}

func TestCheckCompactionSpeedup(t *testing.T) {
	trend := func(frag int64, speedup float64) []byte {
		b, _ := json.Marshal(map[string]any{"datapoints": []any{
			map[string]any{"fragmented_ns_per_op": frag, "compaction_speedup": speedup},
		}})
		return b
	}
	if err := checkCompactionSpeedup(trend(295155, 5.31), 3); err != nil {
		t.Errorf("5.31x failed the 3x bar: %v", err)
	}
	if err := checkCompactionSpeedup(trend(295155, 1.4), 3); err == nil {
		t.Error("1.4x passed the 3x bar")
	}
	if err := checkCompactionSpeedup(trend(0, 0), 3); err == nil {
		t.Error("a datapoint without FragmentedScan results passed an armed gate")
	}
	if err := checkCompactionSpeedup(trend(0, 0), 0); err != nil {
		t.Errorf("disabled bar failed: %v", err)
	}
}

func TestCheckBlockParallelSpeedup(t *testing.T) {
	trend := func(seg int64, speedup float64, cpus int) []byte {
		b, _ := json.Marshal(map[string]any{"datapoints": []any{
			map[string]any{
				"segment_parallel_ns_per_op": seg,
				"block_parallel_speedup":     speedup,
				"scan_cpus":                  cpus,
			},
		}})
		return b
	}
	if err := checkBlockParallelSpeedup(trend(31023497, 3.0, 4), 1.5); err != nil {
		t.Errorf("3.0x on 4 cores failed the 1.5x bar: %v", err)
	}
	if err := checkBlockParallelSpeedup(trend(31023497, 1.1, 4), 1.5); err == nil {
		t.Error("1.1x on 4 cores passed the 1.5x bar")
	}
	// Single-core machines are exempt: no parallelism exists to measure.
	if err := checkBlockParallelSpeedup(trend(31023497, 0.9, 1), 1.5); err != nil {
		t.Errorf("single-core run failed the bar: %v", err)
	}
	if err := checkBlockParallelSpeedup(trend(0, 0, 4), 1.5); err == nil {
		t.Error("a datapoint without ParallelScan results passed an armed gate")
	}
	if err := checkBlockParallelSpeedup(trend(0, 0, 0), 0); err != nil {
		t.Errorf("disabled bar failed: %v", err)
	}
}

func TestAppendDatapointSingleCore(t *testing.T) {
	bench := "BenchmarkParallelAnalyze/K=NumCPU(1)   3   21636837 ns/op\n" +
		"BenchmarkParallelAnalyze/K=2   3   21159707 ns/op\n"
	grown, _, err := appendDatapoint([]byte(sampleTrend), []byte(bench), time.Now(), "go1.24.0", "")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	dp := doc["datapoints"].([]any)[1].(map[string]any)
	if dp["speedup_numcpu"] != 1.0 || dp["cpus"] != 1.0 {
		t.Errorf("single-core datapoint %+v", dp)
	}
}

const sampleAppendTrend = `{
  "benchmark": "BenchmarkAppendIngest",
  "acceptance": "batched live ingest <= 3x the one-shot upload",
  "datapoints": []
}`

const sampleAppendBench = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAppendIngest/oneshot-4   	       5	  86916228 ns/op
BenchmarkAppendIngest/batched-4   	       5	 144156169 ns/op
BenchmarkWindowedReport/full-4    	       5	  60000000 ns/op
BenchmarkWindowedReport/window-4  	       5	  12000000 ns/op
PASS
`

func TestAppendAppendDatapoint(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	grown, summary, err := appendAppendDatapoint([]byte(sampleAppendTrend), []byte(sampleAppendBench), now, "go1.24.0", "ci trend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "append overhead 1.66x") {
		t.Errorf("summary %q lacks the overhead ratio", summary)
	}
	if !strings.Contains(summary, "windowed report 12.0ms vs full 60.0ms") {
		t.Errorf("summary %q lacks the windowed latency", summary)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["acceptance"] != "batched live ingest <= 3x the one-shot upload" {
		t.Error("existing fields not preserved")
	}
	points := doc["datapoints"].([]any)
	if len(points) != 1 {
		t.Fatalf("got %d datapoints, want 1", len(points))
	}
	dp := points[0].(map[string]any)
	for key, want := range map[string]any{
		"date":                    "2026-08-08",
		"go":                      "go1.24.0",
		"oneshot_ns_per_op":       86916228.0,
		"batched_ns_per_op":       144156169.0,
		"append_overhead":         1.66,
		"full_report_ns_per_op":   60000000.0,
		"window_report_ns_per_op": 12000000.0,
		"window_speedup":          5.0,
		"cpu":                     "Intel(R) Xeon(R) Processor @ 2.10GHz",
		"note":                    "ci trend",
	} {
		if dp[key] != want {
			t.Errorf("datapoint[%q] = %v, want %v", key, dp[key], want)
		}
	}
}

func TestAppendAppendDatapointWithoutWindowLines(t *testing.T) {
	ingestOnly := "BenchmarkAppendIngest/oneshot-4   5   86916228 ns/op\n" +
		"BenchmarkAppendIngest/batched-4   5   144156169 ns/op\n"
	grown, _, err := appendAppendDatapoint([]byte(sampleAppendTrend), []byte(ingestOnly), time.Now(), "go1.24.0", "")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	dp := doc["datapoints"].([]any)[0].(map[string]any)
	if _, ok := dp["window_speedup"]; ok {
		t.Error("window fields present without the windowed benchmark")
	}
}

func TestAppendAppendDatapointRejectsTruncated(t *testing.T) {
	if _, _, err := appendAppendDatapoint([]byte(sampleAppendTrend), []byte("PASS\n"), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("empty benchmark output did not error")
	}
	partial := "BenchmarkAppendIngest/oneshot-4   5   86916228 ns/op\n"
	if _, _, err := appendAppendDatapoint([]byte(sampleAppendTrend), []byte(partial), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("output without the batched result did not error")
	}
}

const sampleClusterTrend = `{
  "benchmark": "BenchmarkClusterReport",
  "acceptance": "scatter <= 6x single",
  "datapoints": []
}`

const sampleClusterBench = `goos: linux
goarch: amd64
pkg: repro/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClusterReport/single-4         	       5	   5541877 ns/op
BenchmarkClusterReport/scatter-4        	       5	  12756531 ns/op
PASS
`

func TestAppendClusterDatapoint(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	grown, summary, err := appendClusterDatapoint([]byte(sampleClusterTrend), []byte(sampleClusterBench), now, "go1.24.0", "ci trend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "scatter overhead 2.30x") {
		t.Errorf("summary %q lacks the overhead ratio", summary)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["acceptance"] != "scatter <= 6x single" {
		t.Error("existing fields not preserved")
	}
	points := doc["datapoints"].([]any)
	if len(points) != 1 {
		t.Fatalf("got %d datapoints, want 1", len(points))
	}
	dp := points[0].(map[string]any)
	for key, want := range map[string]any{
		"date":              "2026-08-08",
		"go":                "go1.24.0",
		"single_ns_per_op":  5541877.0,
		"scatter_ns_per_op": 12756531.0,
		"scatter_overhead":  2.3,
		"cpu":               "Intel(R) Xeon(R) Processor @ 2.10GHz",
		"note":              "ci trend",
	} {
		if dp[key] != want {
			t.Errorf("datapoint[%q] = %v, want %v", key, dp[key], want)
		}
	}
}

func TestAppendClusterDatapointRejectsTruncated(t *testing.T) {
	if _, _, err := appendClusterDatapoint([]byte(sampleClusterTrend), []byte("PASS\n"), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("empty benchmark output did not error")
	}
	partial := "BenchmarkClusterReport/single-4   5   5541877 ns/op\n"
	if _, _, err := appendClusterDatapoint([]byte(sampleClusterTrend), []byte(partial), time.Now(), "go1.24.0", ""); err == nil {
		t.Fatal("output without the scatter result did not error")
	}
}

func TestCheckScatterOverhead(t *testing.T) {
	trend := func(overhead float64) []byte {
		b, _ := json.Marshal(map[string]any{"datapoints": []any{
			map[string]any{"scatter_overhead": overhead},
		}})
		return b
	}
	if err := checkScatterOverhead(trend(2.3), 6); err != nil {
		t.Errorf("2.3x failed the 6x bar: %v", err)
	}
	if err := checkScatterOverhead(trend(7.5), 6); err == nil {
		t.Error("7.5x passed the 6x bar")
	}
	if err := checkScatterOverhead(trend(9.9), 0); err != nil {
		t.Errorf("disabled bar failed: %v", err)
	}
}

func TestCheckAppendOverhead(t *testing.T) {
	trend := func(overhead float64) []byte {
		b, _ := json.Marshal(map[string]any{"datapoints": []any{
			map[string]any{"append_overhead": overhead},
		}})
		return b
	}
	if err := checkAppendOverhead(trend(1.7), 3); err != nil {
		t.Errorf("1.7x failed the 3x bar: %v", err)
	}
	if err := checkAppendOverhead(trend(4.1), 3); err == nil {
		t.Error("4.1x passed the 3x bar")
	}
	if err := checkAppendOverhead(trend(9.9), 0); err != nil {
		t.Errorf("disabled bar failed: %v", err)
	}
}

const obsTrend = `{
  "benchmark": "BenchmarkMiddlewareOverhead",
  "acceptance": "instrumented - bare < 5000ns",
  "datapoints": []
}`

const obsBench = `goos: linux
goarch: amd64
pkg: repro/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMiddlewareOverhead/bare-4         	  500000	         2.1 ns/op
BenchmarkMiddlewareOverhead/instrumented-4 	  500000	      1702 ns/op
PASS
`

func TestAppendObsDatapoint(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	grown, summary, err := appendObsDatapoint([]byte(obsTrend), []byte(obsBench), now, "go1.24.0", "ci trend")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "middleware adds 1700ns/request") {
		t.Errorf("summary %q lacks the overhead", summary)
	}
	var doc map[string]any
	if err := json.Unmarshal(grown, &doc); err != nil {
		t.Fatal(err)
	}
	points := doc["datapoints"].([]any)
	if len(points) != 1 {
		t.Fatalf("got %d datapoints, want 1", len(points))
	}
	dp := points[0].(map[string]any)
	for key, want := range map[string]any{
		"date":                   "2026-08-08",
		"bare_ns_per_op":         2.0,
		"instrumented_ns_per_op": 1702.0,
		"mw_overhead_ns":         1699.0, // int64(1702 - 2.1)
		"note":                   "ci trend",
	} {
		if dp[key] != want {
			t.Errorf("datapoint[%q] = %v, want %v", key, dp[key], want)
		}
	}
}

func TestAppendObsDatapointRejectsTruncated(t *testing.T) {
	truncated := strings.Replace(obsBench, "BenchmarkMiddlewareOverhead/instrumented", "BenchmarkSomethingElse/instrumented", 1)
	if _, _, err := appendObsDatapoint([]byte(obsTrend), []byte(truncated), time.Now(), "go1.24.0", ""); err == nil {
		t.Error("truncated output should error, not append garbage")
	}
}

func TestCheckMiddlewareOverhead(t *testing.T) {
	grown := []byte(`{"datapoints": [{"mw_overhead_ns": 1700}]}`)
	if err := checkMiddlewareOverhead(grown, 0); err != nil {
		t.Errorf("disabled gate should pass: %v", err)
	}
	if err := checkMiddlewareOverhead(grown, 5000); err != nil {
		t.Errorf("1700ns under a 5000ns bar should pass: %v", err)
	}
	if err := checkMiddlewareOverhead(grown, 1000); err == nil {
		t.Error("1700ns over a 1000ns bar should fail")
	}
}
