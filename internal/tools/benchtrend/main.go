// Command benchtrend appends one datapoint to a benchmark trend file
// (BENCH_ANALYZE.json) from `go test -bench BenchmarkParallelAnalyze`
// output. CI runs it after the benchmark step and uploads the grown
// file as an artifact, so the K=1 vs K=NumCPU speedup is tracked per
// commit on the multi-core runners.
//
//	go test -run '^$' -bench BenchmarkParallelAnalyze ./internal/core | \
//	    benchtrend -json BENCH_ANALYZE.json -note "ci trend"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	var (
		in       = fs.String("in", "-", "benchmark output to parse (- = stdin)")
		jsonPath = fs.String("json", "BENCH_ANALYZE.json", "trend file to append the datapoint to")
		note     = fs.String("note", "ci trend", "note recorded with the datapoint")
		minSpeed = fs.Float64("min-speedup", 0, "fail (exit nonzero) when the K=1 vs K=NumCPU speedup is below this bar on a multi-core machine — the acceptance gate; 0 disables, and single-core machines are exempt (no parallelism exists to measure)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	benchOut, err := readInput(*in, stdin)
	if err != nil {
		return err
	}
	trend, err := os.ReadFile(*jsonPath)
	if err != nil {
		return err
	}
	grown, summary, err := appendDatapoint(trend, benchOut, time.Now().UTC(), runtime.Version(), *note)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*jsonPath, grown, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout, summary)
	return checkSpeedup(grown, *minSpeed)
}

// checkSpeedup enforces the acceptance bar against the datapoint just
// appended. The datapoint is always recorded first, so a failing run
// still leaves the evidence in the trend artifact.
func checkSpeedup(grown []byte, minSpeedup float64) error {
	if minSpeedup <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			CPUs    int     `json:"cpus"`
			Speedup float64 `json:"speedup_numcpu"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.CPUs <= 1 {
		return nil // nothing to parallelize across; the bar needs cores
	}
	if dp.Speedup < minSpeedup {
		return fmt.Errorf("K=NumCPU(%d) speedup %.2fx is below the %.2fx acceptance bar", dp.CPUs, dp.Speedup, minSpeedup)
	}
	return nil
}

func readInput(path string, stdin io.Reader) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(stdin)
	}
	return os.ReadFile(path)
}

// benchLine matches one sub-benchmark result, e.g.
// "BenchmarkParallelAnalyze/K=NumCPU(4)-4   3   19627556 ns/op ...".
var benchLine = regexp.MustCompile(`(?m)^BenchmarkParallelAnalyze/K=(NumCPU\((\d+)\)|\d+)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// cpuLine matches the benchmark header's cpu description.
var cpuLine = regexp.MustCompile(`(?m)^cpu: (.+)$`)

// appendDatapoint parses benchOut and returns the trend file with one
// datapoint appended, preserving every existing field, plus a one-line
// summary. It errors when the output carries no K=1 or no K=NumCPU
// result — a truncated benchmark run must fail the step, not append
// garbage.
func appendDatapoint(trend, benchOut []byte, now time.Time, goVersion, note string) ([]byte, string, error) {
	nsPerOp := map[string]float64{}
	cpus := 0
	for _, m := range benchLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[3], err)
		}
		if m[2] != "" { // K=NumCPU(n)
			cpus, err = strconv.Atoi(m[2])
			if err != nil {
				return nil, "", fmt.Errorf("parsing cpu count %q: %w", m[2], err)
			}
			nsPerOp["numcpu"] = ns
			nsPerOp[m[2]] = ns // NumCPU(n) is also the K=n result
		} else {
			nsPerOp[strings.TrimPrefix(m[1], "K=")] = ns
		}
	}
	k1, ok1 := nsPerOp["1"]
	kn, okN := nsPerOp["numcpu"]
	if !ok1 || !okN {
		return nil, "", fmt.Errorf("benchmark output carries no K=1 or K=NumCPU result (got %d results)", len(nsPerOp))
	}

	var doc map[string]any
	if err := json.Unmarshal(trend, &doc); err != nil {
		return nil, "", fmt.Errorf("parsing trend file: %w", err)
	}
	points, _ := doc["datapoints"].([]any)

	speedup := k1 / kn
	dp := map[string]any{
		"date":              now.Format("2006-01-02"),
		"go":                goVersion,
		"cpus":              cpus,
		"k1_ns_per_op":      int64(k1),
		"knumcpu_ns_per_op": int64(kn),
		"speedup_numcpu":    math2(speedup),
		"note":              note,
	}
	if m := cpuLine.FindStringSubmatch(string(benchOut)); m != nil {
		dp["cpu"] = strings.TrimSpace(m[1])
	}
	for _, k := range []string{"2", "4"} {
		if ns, ok := nsPerOp[k]; ok {
			dp["k"+k+"_ns_per_op"] = int64(ns)
		}
	}
	doc["datapoints"] = append(points, dp)

	grown, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, "", err
	}
	summary := fmt.Sprintf("appended datapoint: K=1 %.1fms, K=NumCPU(%d) %.1fms, speedup %.2fx",
		k1/1e6, cpus, kn/1e6, speedup)
	return append(grown, '\n'), summary, nil
}

// math2 rounds to two decimals so the trend file stays readable.
func math2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
