// Command benchtrend appends one datapoint to a benchmark trend file
// from `go test -bench` output. CI runs it after the benchmark steps
// and uploads the grown files as artifacts, so the headline ratios are
// tracked per commit on the multi-core runners. Three suites are known:
//
//   - analyze (default): BenchmarkParallelAnalyze K=1 vs K=NumCPU into
//     BENCH_ANALYZE.json, with an optional -min-speedup gate.
//
//   - serve: BenchmarkStoreColdReport memory vs disk vs disk-scan into
//     BENCH_SERVE.json — the cost of a restart under the durable store
//     — with an optional -max-restart-overhead gate on disk/memory.
//
//   - scan: BenchmarkSegmentScan jsonl vs colseg into BENCH_SCAN.json —
//     the columnar segment codec's disk-scan throughput and on-disk
//     size against the JSONL baseline — with an optional
//     -min-scan-speedup gate on the jsonl/colseg time ratio. When
//     BenchmarkFragmentedScan and BenchmarkParallelScan ran in the same
//     output, the datapoint also carries the fragmented-vs-compacted
//     scan times (gated by -min-compaction-speedup) and the
//     segment-parallel vs block-parallel times (gated by
//     -min-block-parallel-speedup on multi-core runners).
//
//   - cluster: BenchmarkClusterReport single vs scatter into
//     BENCH_CLUSTER.json — what a cold report costs when it is gathered
//     from a 3-node loopback cluster instead of computed on one node —
//     with an optional -max-scatter-overhead gate on the scatter/single
//     time ratio.
//
//   - obs: BenchmarkMiddlewareOverhead bare vs instrumented into
//     BENCH_OBS.json — what the observability middleware (trace ID,
//     metrics, request ring) adds to every request — with an optional
//     -max-mw-overhead-ns gate on the instrumented−bare difference.
//
//   - append: BenchmarkAppendIngest oneshot vs batched into
//     BENCH_APPEND.json — the price of live batched ingest (per-batch
//     manifest commits, aggregate refreezes, fingerprint extensions)
//     over a single upload of the same trace — with an optional
//     -max-append-overhead gate on the batched/oneshot time ratio.
//
//     go test -run '^$' -bench BenchmarkParallelAnalyze ./internal/core | \
//     benchtrend -json BENCH_ANALYZE.json -note "ci trend"
//     go test -run '^$' -bench BenchmarkStoreColdReport ./internal/server | \
//     benchtrend -suite serve -json BENCH_SERVE.json -note "ci trend"
//     go test -run '^$' -bench BenchmarkSegmentScan ./internal/storage | \
//     benchtrend -suite scan -json BENCH_SCAN.json -note "ci trend"
//     go test -run '^$' -bench BenchmarkAppendIngest ./internal/server | \
//     benchtrend -suite append -json BENCH_APPEND.json -note "ci trend"
//     go test -run '^$' -bench BenchmarkClusterReport ./internal/server | \
//     benchtrend -suite cluster -json BENCH_CLUSTER.json -note "ci trend"
//     go test -run '^$' -bench BenchmarkMiddlewareOverhead ./internal/server | \
//     benchtrend -suite obs -json BENCH_OBS.json -note "ci trend"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	var (
		in          = fs.String("in", "-", "benchmark output to parse (- = stdin)")
		suite       = fs.String("suite", "analyze", "benchmark suite to parse: analyze (BenchmarkParallelAnalyze), serve (BenchmarkStoreColdReport), scan (BenchmarkSegmentScan), append (BenchmarkAppendIngest), cluster (BenchmarkClusterReport), or obs (BenchmarkMiddlewareOverhead)")
		jsonPath    = fs.String("json", "", "trend file to append the datapoint to (default BENCH_ANALYZE.json / BENCH_SERVE.json / BENCH_SCAN.json / BENCH_APPEND.json per suite)")
		note        = fs.String("note", "ci trend", "note recorded with the datapoint")
		minSpeed    = fs.Float64("min-speedup", 0, "analyze suite: fail (exit nonzero) when the K=1 vs K=NumCPU speedup is below this bar on a multi-core machine — the acceptance gate; 0 disables, and single-core machines are exempt (no parallelism exists to measure)")
		maxOver     = fs.Float64("max-restart-overhead", 0, "serve suite: fail when the disk/memory cold-report ratio exceeds this bar — a restarted server must serve from the persisted partial, not rescan; 0 disables")
		minScan     = fs.Float64("min-scan-speedup", 0, "scan suite: fail when the columnar disk scan is not at least this many times faster than the JSONL baseline — the segment-format acceptance gate; 0 disables")
		minCompact  = fs.Float64("min-compaction-speedup", 0, "scan suite: fail when scanning the compacted generation is not at least this many times faster than the 32-batch fragmented one (BenchmarkFragmentedScan) — the compaction acceptance gate; 0 disables")
		minBlockPar = fs.Float64("min-block-parallel-speedup", 0, "scan suite: fail when the block-parallel scan is not at least this many times faster than the segment-parallel scan of the same packed trace (BenchmarkParallelScan) on a multi-core machine — single-core machines are exempt (no parallelism exists to measure); 0 disables")
		maxApp      = fs.Float64("max-append-overhead", 0, "append suite: fail when batched live ingest costs more than this many times the one-shot upload of the same trace — the live-ingest acceptance gate; 0 disables")
		maxScat     = fs.Float64("max-scatter-overhead", 0, "cluster suite: fail when a cold scatter/gather report costs more than this many times the single-node cold report of the same trace — the distributed-serving acceptance gate; 0 disables")
		maxMwNs     = fs.Float64("max-mw-overhead-ns", 0, "obs suite: fail when the observability middleware adds more than this many nanoseconds to a request (instrumented minus bare ns/op) — the per-request overhead acceptance gate; 0 disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonPath == "" {
		switch *suite {
		case "serve":
			*jsonPath = "BENCH_SERVE.json"
		case "scan":
			*jsonPath = "BENCH_SCAN.json"
		case "append":
			*jsonPath = "BENCH_APPEND.json"
		case "cluster":
			*jsonPath = "BENCH_CLUSTER.json"
		case "obs":
			*jsonPath = "BENCH_OBS.json"
		default:
			*jsonPath = "BENCH_ANALYZE.json"
		}
	}
	benchOut, err := readInput(*in, stdin)
	if err != nil {
		return err
	}
	trend, err := os.ReadFile(*jsonPath)
	if err != nil {
		return err
	}
	var grown []byte
	var summary string
	switch *suite {
	case "analyze":
		grown, summary, err = appendDatapoint(trend, benchOut, time.Now().UTC(), runtime.Version(), *note)
	case "serve":
		grown, summary, err = appendServeDatapoint(trend, benchOut, time.Now().UTC(), runtime.Version(), *note)
	case "scan":
		grown, summary, err = appendScanDatapoint(trend, benchOut, time.Now().UTC(), runtime.Version(), *note)
	case "append":
		grown, summary, err = appendAppendDatapoint(trend, benchOut, time.Now().UTC(), runtime.Version(), *note)
	case "cluster":
		grown, summary, err = appendClusterDatapoint(trend, benchOut, time.Now().UTC(), runtime.Version(), *note)
	case "obs":
		grown, summary, err = appendObsDatapoint(trend, benchOut, time.Now().UTC(), runtime.Version(), *note)
	default:
		return fmt.Errorf("unknown suite %q (use analyze, serve, scan, append, cluster, or obs)", *suite)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*jsonPath, grown, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout, summary)
	switch *suite {
	case "serve":
		return checkRestartOverhead(grown, *maxOver)
	case "scan":
		if err := checkScanSpeedup(grown, *minScan); err != nil {
			return err
		}
		if err := checkCompactionSpeedup(grown, *minCompact); err != nil {
			return err
		}
		return checkBlockParallelSpeedup(grown, *minBlockPar)
	case "append":
		return checkAppendOverhead(grown, *maxApp)
	case "cluster":
		return checkScatterOverhead(grown, *maxScat)
	case "obs":
		return checkMiddlewareOverhead(grown, *maxMwNs)
	}
	return checkSpeedup(grown, *minSpeed)
}

// appendIngestLine matches one BenchmarkAppendIngest sub-benchmark,
// e.g. "BenchmarkAppendIngest/batched-4   3   54531950 ns/op".
var appendIngestLine = regexp.MustCompile(`(?m)^BenchmarkAppendIngest/(oneshot|batched)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// windowReportLine matches the optional rolling-window companion,
// BenchmarkWindowedReport/{full,window}: cold out-of-core report over
// the whole trace versus a pruned 6-hour slice.
var windowReportLine = regexp.MustCompile(`(?m)^BenchmarkWindowedReport/(full|window)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// appendAppendDatapoint parses the live-ingest benchmark and appends
// the oneshot-vs-batched datapoint. Both arms must be present — a
// truncated run must fail the step, not append garbage.
func appendAppendDatapoint(trend, benchOut []byte, now time.Time, goVersion, note string) ([]byte, string, error) {
	nsPerOp := map[string]float64{}
	for _, m := range appendIngestLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[2], err)
		}
		nsPerOp[m[1]] = ns
	}
	oneshot, okO := nsPerOp["oneshot"]
	batched, okB := nsPerOp["batched"]
	if !okO || !okB {
		return nil, "", fmt.Errorf("benchmark output carries no oneshot or batched result (got %d results)", len(nsPerOp))
	}

	var doc map[string]any
	if err := json.Unmarshal(trend, &doc); err != nil {
		return nil, "", fmt.Errorf("parsing trend file: %w", err)
	}
	points, _ := doc["datapoints"].([]any)

	overhead := batched / oneshot
	dp := map[string]any{
		"date":              now.Format("2006-01-02"),
		"go":                goVersion,
		"oneshot_ns_per_op": int64(oneshot),
		"batched_ns_per_op": int64(batched),
		"append_overhead":   math2(overhead),
		"note":              note,
	}
	if m := cpuLine.FindStringSubmatch(string(benchOut)); m != nil {
		dp["cpu"] = strings.TrimSpace(m[1])
	}
	summary := fmt.Sprintf("appended datapoint: oneshot %.1fms, batched %.1fms (append overhead %.2fx)",
		oneshot/1e6, batched/1e6, overhead)

	// The windowed-vs-full report latency rides along when its
	// benchmark ran in the same output; absent lines just skip the
	// fields rather than failing an ingest-only run.
	winNs := map[string]float64{}
	for _, m := range windowReportLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[2], err)
		}
		winNs[m[1]] = ns
	}
	if full, ok := winNs["full"]; ok {
		if window, ok := winNs["window"]; ok {
			dp["full_report_ns_per_op"] = int64(full)
			dp["window_report_ns_per_op"] = int64(window)
			dp["window_speedup"] = math2(full / window)
			summary += fmt.Sprintf("; windowed report %.1fms vs full %.1fms (%.2fx)",
				window/1e6, full/1e6, full/window)
		}
	}
	doc["datapoints"] = append(points, dp)

	grown, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(grown, '\n'), summary, nil
}

// checkAppendOverhead enforces the append-suite bar against the
// datapoint just appended. The datapoint is always recorded first, so a
// failing run still leaves the evidence in the trend artifact.
func checkAppendOverhead(grown []byte, maxOverhead float64) error {
	if maxOverhead <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			Overhead float64 `json:"append_overhead"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.Overhead > maxOverhead {
		return fmt.Errorf("batched/oneshot ingest overhead %.2fx exceeds the %.2fx acceptance bar", dp.Overhead, maxOverhead)
	}
	return nil
}

// mwOverheadLine matches one BenchmarkMiddlewareOverhead sub-benchmark,
// e.g. "BenchmarkMiddlewareOverhead/instrumented-4   500000   1701 ns/op".
var mwOverheadLine = regexp.MustCompile(`(?m)^BenchmarkMiddlewareOverhead/(bare|instrumented)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// appendObsDatapoint parses the middleware benchmark and appends the
// bare-vs-instrumented datapoint; the headline number is the absolute
// per-request cost the observability layer adds. Both arms must be
// present — a truncated run must fail the step, not append garbage.
func appendObsDatapoint(trend, benchOut []byte, now time.Time, goVersion, note string) ([]byte, string, error) {
	nsPerOp := map[string]float64{}
	for _, m := range mwOverheadLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[2], err)
		}
		nsPerOp[m[1]] = ns
	}
	bare, okB := nsPerOp["bare"]
	instrumented, okI := nsPerOp["instrumented"]
	if !okB || !okI {
		return nil, "", fmt.Errorf("benchmark output carries no bare or instrumented result (got %d results)", len(nsPerOp))
	}

	var doc map[string]any
	if err := json.Unmarshal(trend, &doc); err != nil {
		return nil, "", fmt.Errorf("parsing trend file: %w", err)
	}
	points, _ := doc["datapoints"].([]any)

	overhead := instrumented - bare
	dp := map[string]any{
		"date":                   now.Format("2006-01-02"),
		"go":                     goVersion,
		"bare_ns_per_op":         int64(bare),
		"instrumented_ns_per_op": int64(instrumented),
		"mw_overhead_ns":         int64(overhead),
		"note":                   note,
	}
	if m := cpuLine.FindStringSubmatch(string(benchOut)); m != nil {
		dp["cpu"] = strings.TrimSpace(m[1])
	}
	doc["datapoints"] = append(points, dp)

	grown, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, "", err
	}
	summary := fmt.Sprintf("appended datapoint: bare %.0fns, instrumented %.0fns (middleware adds %.0fns/request)",
		bare, instrumented, overhead)
	return append(grown, '\n'), summary, nil
}

// checkMiddlewareOverhead enforces the obs-suite bar against the
// datapoint just appended. The datapoint is always recorded first, so a
// failing run still leaves the evidence in the trend artifact.
func checkMiddlewareOverhead(grown []byte, maxNs float64) error {
	if maxNs <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			OverheadNS float64 `json:"mw_overhead_ns"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.OverheadNS > maxNs {
		return fmt.Errorf("middleware overhead %.0fns/request exceeds the %.0fns acceptance bar", dp.OverheadNS, maxNs)
	}
	return nil
}

// clusterReportLine matches one BenchmarkClusterReport sub-benchmark,
// e.g. "BenchmarkClusterReport/scatter-4   12   9531950 ns/op".
var clusterReportLine = regexp.MustCompile(`(?m)^BenchmarkClusterReport/(single|scatter)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// appendClusterDatapoint parses the distributed-serving benchmark and
// appends the single-vs-scatter cold-report datapoint. Both arms must
// be present — a truncated run must fail the step, not append garbage.
func appendClusterDatapoint(trend, benchOut []byte, now time.Time, goVersion, note string) ([]byte, string, error) {
	nsPerOp := map[string]float64{}
	for _, m := range clusterReportLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[2], err)
		}
		nsPerOp[m[1]] = ns
	}
	single, okS := nsPerOp["single"]
	scatter, okC := nsPerOp["scatter"]
	if !okS || !okC {
		return nil, "", fmt.Errorf("benchmark output carries no single or scatter result (got %d results)", len(nsPerOp))
	}

	var doc map[string]any
	if err := json.Unmarshal(trend, &doc); err != nil {
		return nil, "", fmt.Errorf("parsing trend file: %w", err)
	}
	points, _ := doc["datapoints"].([]any)

	overhead := scatter / single
	dp := map[string]any{
		"date":              now.Format("2006-01-02"),
		"go":                goVersion,
		"single_ns_per_op":  int64(single),
		"scatter_ns_per_op": int64(scatter),
		"scatter_overhead":  math2(overhead),
		"note":              note,
	}
	if m := cpuLine.FindStringSubmatch(string(benchOut)); m != nil {
		dp["cpu"] = strings.TrimSpace(m[1])
	}
	doc["datapoints"] = append(points, dp)

	grown, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, "", err
	}
	summary := fmt.Sprintf("appended datapoint: single %.1fms, scatter %.1fms (scatter overhead %.2fx)",
		single/1e6, scatter/1e6, overhead)
	return append(grown, '\n'), summary, nil
}

// checkScatterOverhead enforces the cluster-suite bar against the
// datapoint just appended. The datapoint is always recorded first, so a
// failing run still leaves the evidence in the trend artifact.
func checkScatterOverhead(grown []byte, maxOverhead float64) error {
	if maxOverhead <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			Overhead float64 `json:"scatter_overhead"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.Overhead > maxOverhead {
		return fmt.Errorf("scatter/single cold-report overhead %.2fx exceeds the %.2fx acceptance bar", dp.Overhead, maxOverhead)
	}
	return nil
}

// serveLine matches one BenchmarkStoreColdReport sub-benchmark, e.g.
// "BenchmarkStoreColdReport/disk-scan-4   3   54531950 ns/op".
var serveLine = regexp.MustCompile(`(?m)^BenchmarkStoreColdReport/(memory|disk|disk-scan)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// appendServeDatapoint parses the durability benchmark and appends the
// memory/disk/disk-scan cold-report datapoint. It errors when the
// memory or disk result is missing — a truncated run must fail the
// step, not append garbage (disk-scan is optional; partial-free scans
// may be skipped in quick runs).
func appendServeDatapoint(trend, benchOut []byte, now time.Time, goVersion, note string) ([]byte, string, error) {
	nsPerOp := map[string]float64{}
	for _, m := range serveLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[2], err)
		}
		nsPerOp[m[1]] = ns
	}
	mem, okM := nsPerOp["memory"]
	disk, okD := nsPerOp["disk"]
	if !okM || !okD {
		return nil, "", fmt.Errorf("benchmark output carries no memory or disk result (got %d results)", len(nsPerOp))
	}

	var doc map[string]any
	if err := json.Unmarshal(trend, &doc); err != nil {
		return nil, "", fmt.Errorf("parsing trend file: %w", err)
	}
	points, _ := doc["datapoints"].([]any)

	overhead := disk / mem
	dp := map[string]any{
		"date":             now.Format("2006-01-02"),
		"go":               goVersion,
		"memory_ns_per_op": int64(mem),
		"disk_ns_per_op":   int64(disk),
		"restart_overhead": math2(overhead),
		"note":             note,
	}
	if scan, ok := nsPerOp["disk-scan"]; ok {
		dp["disk_scan_ns_per_op"] = int64(scan)
	}
	if m := cpuLine.FindStringSubmatch(string(benchOut)); m != nil {
		dp["cpu"] = strings.TrimSpace(m[1])
	}
	doc["datapoints"] = append(points, dp)

	grown, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, "", err
	}
	summary := fmt.Sprintf("appended datapoint: memory %.1fms, disk %.1fms (restart overhead %.2fx)",
		mem/1e6, disk/1e6, overhead)
	return append(grown, '\n'), summary, nil
}

// checkRestartOverhead enforces the serve-suite bar against the
// datapoint just appended.
func checkRestartOverhead(grown []byte, maxOverhead float64) error {
	if maxOverhead <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			Overhead float64 `json:"restart_overhead"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.Overhead > maxOverhead {
		return fmt.Errorf("disk/memory cold-report overhead %.2fx exceeds the %.2fx acceptance bar", dp.Overhead, maxOverhead)
	}
	return nil
}

// fragLine matches one BenchmarkFragmentedScan sub-benchmark, e.g.
// "BenchmarkFragmentedScan/compacted-4   50   55542 ns/op".
var fragLine = regexp.MustCompile(`(?m)^BenchmarkFragmentedScan/(fragmented|compacted)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// parScanLine matches one BenchmarkParallelScan sub-benchmark. The
// optional -N suffix is GOMAXPROCS (Go's testing package omits it when
// GOMAXPROCS is 1), which the block-parallel gate uses to exempt
// single-core machines.
var parScanLine = regexp.MustCompile(`(?m)^BenchmarkParallelScan/(segment|block)(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// scanLine matches one BenchmarkSegmentScan sub-benchmark with its
// segbytes metric, e.g. "BenchmarkSegmentScan/colseg-4   100   5488495
// ns/op   1043.59 MB/s   68581 jobs/scan   5727758 segbytes".
var scanLine = regexp.MustCompile(`(?m)^BenchmarkSegmentScan/(jsonl|colseg)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op.*?\s(\d+(?:\.\d+)?) segbytes`)

// appendScanDatapoint parses the segment-scan benchmark and appends the
// jsonl-vs-colseg datapoint: scan times, on-disk sizes, and the two
// headline ratios (scan_speedup = jsonl/colseg time, compression =
// jsonl/colseg bytes). Both codecs must be present — a truncated run
// must fail the step, not append garbage.
func appendScanDatapoint(trend, benchOut []byte, now time.Time, goVersion, note string) ([]byte, string, error) {
	nsPerOp := map[string]float64{}
	segBytes := map[string]float64{}
	for _, m := range scanLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[2], err)
		}
		sz, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing segbytes %q: %w", m[3], err)
		}
		nsPerOp[m[1]] = ns
		segBytes[m[1]] = sz
	}
	jsonl, okJ := nsPerOp["jsonl"]
	colseg, okC := nsPerOp["colseg"]
	if !okJ || !okC {
		return nil, "", fmt.Errorf("benchmark output carries no jsonl or colseg result (got %d results)", len(nsPerOp))
	}

	var doc map[string]any
	if err := json.Unmarshal(trend, &doc); err != nil {
		return nil, "", fmt.Errorf("parsing trend file: %w", err)
	}
	points, _ := doc["datapoints"].([]any)

	speedup := jsonl / colseg
	compression := segBytes["jsonl"] / segBytes["colseg"]
	dp := map[string]any{
		"date":              now.Format("2006-01-02"),
		"go":                goVersion,
		"jsonl_ns_per_op":   int64(jsonl),
		"colseg_ns_per_op":  int64(colseg),
		"scan_speedup":      math2(speedup),
		"jsonl_seg_bytes":   int64(segBytes["jsonl"]),
		"colseg_seg_bytes":  int64(segBytes["colseg"]),
		"compression_ratio": math2(compression),
		"note":              note,
	}
	if m := cpuLine.FindStringSubmatch(string(benchOut)); m != nil {
		dp["cpu"] = strings.TrimSpace(m[1])
	}
	summary := fmt.Sprintf("appended datapoint: jsonl %.1fms, colseg %.1fms (scan speedup %.2fx, compression %.2fx)",
		jsonl/1e6, colseg/1e6, speedup, compression)

	// The compaction and parallel-strategy companions ride along when
	// their benchmarks ran in the same output; absent lines just skip
	// the fields rather than failing a codec-only run.
	fragNs := map[string]float64{}
	for _, m := range fragLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[2], err)
		}
		fragNs[m[1]] = ns
	}
	if frag, ok := fragNs["fragmented"]; ok {
		if packed, ok := fragNs["compacted"]; ok {
			dp["fragmented_ns_per_op"] = int64(frag)
			dp["compacted_ns_per_op"] = int64(packed)
			dp["compaction_speedup"] = math2(frag / packed)
			summary += fmt.Sprintf("; compacted scan %.2fms vs fragmented %.2fms (%.2fx)",
				packed/1e6, frag/1e6, frag/packed)
		}
	}
	parNs := map[string]float64{}
	parCPUs := 1
	for _, m := range parScanLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[3], err)
		}
		if m[2] != "" {
			parCPUs, err = strconv.Atoi(m[2])
			if err != nil {
				return nil, "", fmt.Errorf("parsing GOMAXPROCS suffix %q: %w", m[2], err)
			}
		}
		parNs[m[1]] = ns
	}
	if seg, ok := parNs["segment"]; ok {
		if blk, ok := parNs["block"]; ok {
			dp["segment_parallel_ns_per_op"] = int64(seg)
			dp["block_parallel_ns_per_op"] = int64(blk)
			dp["block_parallel_speedup"] = math2(seg / blk)
			dp["scan_cpus"] = parCPUs
			summary += fmt.Sprintf("; block-parallel %.1fms vs segment-parallel %.1fms (%.2fx on %d cores)",
				blk/1e6, seg/1e6, seg/blk, parCPUs)
		}
	}
	doc["datapoints"] = append(points, dp)

	grown, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(grown, '\n'), summary, nil
}

// checkScanSpeedup enforces the scan-suite bar against the datapoint
// just appended. The datapoint is always recorded first, so a failing
// run still leaves the evidence in the trend artifact.
func checkScanSpeedup(grown []byte, minSpeedup float64) error {
	if minSpeedup <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			Speedup float64 `json:"scan_speedup"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.Speedup < minSpeedup {
		return fmt.Errorf("colseg scan speedup %.2fx is below the %.2fx acceptance bar", dp.Speedup, minSpeedup)
	}
	return nil
}

// checkCompactionSpeedup enforces the fragmented-vs-compacted scan bar
// against the datapoint just appended. With the gate armed the
// compaction fields must be present — a run whose FragmentedScan
// benchmark was truncated must fail, not silently pass.
func checkCompactionSpeedup(grown []byte, minSpeedup float64) error {
	if minSpeedup <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			Fragmented int64   `json:"fragmented_ns_per_op"`
			Speedup    float64 `json:"compaction_speedup"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.Fragmented == 0 {
		return fmt.Errorf("compaction gate armed but the datapoint carries no BenchmarkFragmentedScan results")
	}
	if dp.Speedup < minSpeedup {
		return fmt.Errorf("compacted-scan speedup %.2fx is below the %.2fx acceptance bar", dp.Speedup, minSpeedup)
	}
	return nil
}

// checkBlockParallelSpeedup enforces the block-vs-segment parallel scan
// bar against the datapoint just appended. Single-core machines are
// exempt — with one core both strategies degenerate to a sequential
// scan and there is no parallelism to measure.
func checkBlockParallelSpeedup(grown []byte, minSpeedup float64) error {
	if minSpeedup <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			Segment int64   `json:"segment_parallel_ns_per_op"`
			Speedup float64 `json:"block_parallel_speedup"`
			CPUs    int     `json:"scan_cpus"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.Segment == 0 {
		return fmt.Errorf("block-parallel gate armed but the datapoint carries no BenchmarkParallelScan results")
	}
	if dp.CPUs <= 1 {
		return nil // nothing to parallelize across; the bar needs cores
	}
	if dp.Speedup < minSpeedup {
		return fmt.Errorf("block-parallel scan speedup %.2fx on %d cores is below the %.2fx acceptance bar", dp.Speedup, dp.CPUs, minSpeedup)
	}
	return nil
}

// checkSpeedup enforces the acceptance bar against the datapoint just
// appended. The datapoint is always recorded first, so a failing run
// still leaves the evidence in the trend artifact.
func checkSpeedup(grown []byte, minSpeedup float64) error {
	if minSpeedup <= 0 {
		return nil
	}
	var doc struct {
		Datapoints []struct {
			CPUs    int     `json:"cpus"`
			Speedup float64 `json:"speedup_numcpu"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(grown, &doc); err != nil {
		return err
	}
	dp := doc.Datapoints[len(doc.Datapoints)-1]
	if dp.CPUs <= 1 {
		return nil // nothing to parallelize across; the bar needs cores
	}
	if dp.Speedup < minSpeedup {
		return fmt.Errorf("K=NumCPU(%d) speedup %.2fx is below the %.2fx acceptance bar", dp.CPUs, dp.Speedup, minSpeedup)
	}
	return nil
}

func readInput(path string, stdin io.Reader) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(stdin)
	}
	return os.ReadFile(path)
}

// benchLine matches one sub-benchmark result, e.g.
// "BenchmarkParallelAnalyze/K=NumCPU(4)-4   3   19627556 ns/op ...".
var benchLine = regexp.MustCompile(`(?m)^BenchmarkParallelAnalyze/K=(NumCPU\((\d+)\)|\d+)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// cpuLine matches the benchmark header's cpu description.
var cpuLine = regexp.MustCompile(`(?m)^cpu: (.+)$`)

// appendDatapoint parses benchOut and returns the trend file with one
// datapoint appended, preserving every existing field, plus a one-line
// summary. It errors when the output carries no K=1 or no K=NumCPU
// result — a truncated benchmark run must fail the step, not append
// garbage.
func appendDatapoint(trend, benchOut []byte, now time.Time, goVersion, note string) ([]byte, string, error) {
	nsPerOp := map[string]float64{}
	cpus := 0
	for _, m := range benchLine.FindAllStringSubmatch(string(benchOut), -1) {
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parsing ns/op %q: %w", m[3], err)
		}
		if m[2] != "" { // K=NumCPU(n)
			cpus, err = strconv.Atoi(m[2])
			if err != nil {
				return nil, "", fmt.Errorf("parsing cpu count %q: %w", m[2], err)
			}
			nsPerOp["numcpu"] = ns
			nsPerOp[m[2]] = ns // NumCPU(n) is also the K=n result
		} else {
			nsPerOp[strings.TrimPrefix(m[1], "K=")] = ns
		}
	}
	k1, ok1 := nsPerOp["1"]
	kn, okN := nsPerOp["numcpu"]
	if !ok1 || !okN {
		return nil, "", fmt.Errorf("benchmark output carries no K=1 or K=NumCPU result (got %d results)", len(nsPerOp))
	}

	var doc map[string]any
	if err := json.Unmarshal(trend, &doc); err != nil {
		return nil, "", fmt.Errorf("parsing trend file: %w", err)
	}
	points, _ := doc["datapoints"].([]any)

	speedup := k1 / kn
	dp := map[string]any{
		"date":              now.Format("2006-01-02"),
		"go":                goVersion,
		"cpus":              cpus,
		"k1_ns_per_op":      int64(k1),
		"knumcpu_ns_per_op": int64(kn),
		"speedup_numcpu":    math2(speedup),
		"note":              note,
	}
	if m := cpuLine.FindStringSubmatch(string(benchOut)); m != nil {
		dp["cpu"] = strings.TrimSpace(m[1])
	}
	for _, k := range []string{"2", "4"} {
		if ns, ok := nsPerOp[k]; ok {
			dp["k"+k+"_ns_per_op"] = int64(ns)
		}
	}
	doc["datapoints"] = append(points, dp)

	grown, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, "", err
	}
	summary := fmt.Sprintf("appended datapoint: K=1 %.1fms, K=NumCPU(%d) %.1fms, speedup %.2fx",
		k1/1e6, cpus, kn/1e6, speedup)
	return append(grown, '\n'), summary, nil
}

// math2 rounds to two decimals so the trend file stays readable.
func math2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
