package hdfs

import (
	"testing"
	"time"

	"repro/internal/units"
)

var t0 = time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)

func newFS(t *testing.T, nodes int) *FS {
	t.Helper()
	fs, err := New(Config{Datanodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero datanodes should error")
	}
	fs, err := New(Config{Datanodes: 2, ReplicationFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/a", units.GB, t0)
	if err != nil {
		t.Fatal(err)
	}
	info := fs.blocks[f.Blocks[0]]
	if len(info.replicas) != 2 {
		t.Errorf("replication should cap at datanodes, got %d", len(info.replicas))
	}
}

func TestCreateBlocks(t *testing.T) {
	fs := newFS(t, 10)
	f, err := fs.Create("/data/x", units.Bytes(1e9), t0) // 1 GB / 256 MB -> 4 blocks
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Errorf("block count = %d, want 4", len(f.Blocks))
	}
	var sum units.Bytes
	for _, id := range f.Blocks {
		sum += fs.blocks[id].size
	}
	if sum != f.Size {
		t.Errorf("block sizes sum to %v, want %v", sum, f.Size)
	}
	// Replicas distinct per block.
	for _, id := range f.Blocks {
		seen := map[int]bool{}
		for _, n := range fs.blocks[id].replicas {
			if seen[n] {
				t.Fatal("duplicate replica node")
			}
			seen[n] = true
		}
	}
}

func TestCreateEmptyFile(t *testing.T) {
	fs := newFS(t, 3)
	f, err := fs.Create("/empty", 0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("empty file should get one zero block, got %d", len(f.Blocks))
	}
	if fs.TotalStored() != 0 {
		t.Errorf("stored = %v, want 0", fs.TotalStored())
	}
}

func TestCreateErrors(t *testing.T) {
	fs := newFS(t, 3)
	if _, err := fs.Create("", units.KB, t0); err == nil {
		t.Error("empty path should error")
	}
	if _, err := fs.Create("/x", -1, t0); err == nil {
		t.Error("negative size should error")
	}
}

func TestOverwriteReleasesBlocks(t *testing.T) {
	fs := newFS(t, 5)
	if _, err := fs.Create("/out", units.Bytes(2e9), t0); err != nil {
		t.Fatal(err)
	}
	raw1 := fs.RawStored()
	if _, err := fs.Create("/out", units.Bytes(1e6), t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if fs.FileCount() != 1 {
		t.Errorf("file count = %d, want 1", fs.FileCount())
	}
	if fs.RawStored() >= raw1 {
		t.Errorf("overwrite with smaller file should shrink raw usage: %v -> %v", raw1, fs.RawStored())
	}
	if got := fs.TotalStored(); got != units.Bytes(1e6) {
		t.Errorf("stored = %v, want 1 MB", got)
	}
}

func TestOpenTracksAccesses(t *testing.T) {
	fs := newFS(t, 3)
	if _, err := fs.Create("/f", units.MB, t0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f, err := fs.Open("/f", t0.Add(time.Duration(i)*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if f.Accesses != uint64(i+1) {
			t.Errorf("accesses = %d, want %d", f.Accesses, i+1)
		}
	}
	f, _ := fs.Stat("/f")
	if !f.LastRead.Equal(t0.Add(4 * time.Minute)) {
		t.Errorf("LastRead = %v", f.LastRead)
	}
	if _, err := fs.Open("/missing", t0); err == nil {
		t.Error("missing file should error")
	}
}

func TestDelete(t *testing.T) {
	fs := newFS(t, 3)
	if _, err := fs.Create("/f", units.GB, t0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.FileCount() != 0 || fs.RawStored() != 0 {
		t.Error("delete should release everything")
	}
	if err := fs.Delete("/f"); err == nil {
		t.Error("double delete should error")
	}
}

func TestReplicationAccounting(t *testing.T) {
	fs, err := New(Config{Datanodes: 10, ReplicationFactor: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/f", units.GB, t0); err != nil {
		t.Fatal(err)
	}
	if got, want := fs.RawStored(), 3*fs.TotalStored(); got != want {
		t.Errorf("raw = %v, want 3x logical %v", got, want)
	}
}

func TestPlacementBalance(t *testing.T) {
	fs, err := New(Config{Datanodes: 20, ReplicationFactor: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := fs.Create(pathN(i), 512*units.MB, t0); err != nil {
			t.Fatal(err)
		}
	}
	if imb := fs.NodeImbalance(); imb > 1.6 {
		t.Errorf("node imbalance = %v, want < 1.6", imb)
	}
}

func pathN(i int) string {
	return "/data/f" + string(rune('a'+i%26)) + "/" + time.Duration(i).String()
}

func TestFilesSorted(t *testing.T) {
	fs := newFS(t, 3)
	for _, p := range []string{"/c", "/a", "/b"} {
		if _, err := fs.Create(p, units.KB, t0); err != nil {
			t.Fatal(err)
		}
	}
	files := fs.Files()
	if len(files) != 3 || files[0].Path != "/a" || files[2].Path != "/c" {
		t.Errorf("Files() not sorted: %v", []string{files[0].Path, files[1].Path, files[2].Path})
	}
}

func TestFrequencyTiering(t *testing.T) {
	fs := newFS(t, 5)
	// hot: 1 MB accessed 100x; warm: 1 MB accessed 10x; cold: 1 GB accessed 1x.
	mk := func(p string, size units.Bytes, accesses int) {
		if _, err := fs.Create(p, size, t0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < accesses; i++ {
			if _, err := fs.Open(p, t0.Add(time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk("/hot", units.MB, 100)
	mk("/warm", units.MB, 10)
	mk("/cold", units.GB, 1)
	rep := EvaluateTiering(fs, FrequencyTiering{}, 2*units.MB)
	if rep.FilesPromoted != 2 {
		t.Errorf("promoted = %d, want 2 (hot+warm fit)", rep.FilesPromoted)
	}
	if rep.AccessCoverage < 0.99 {
		t.Errorf("coverage = %v, want ~110/111", rep.AccessCoverage)
	}
	hot, _ := fs.Stat("/hot")
	cold, _ := fs.Stat("/cold")
	if hot.Tier != TierFast || cold.Tier != TierCapacity {
		t.Error("tier assignment wrong")
	}
}

func TestSizeThresholdTiering(t *testing.T) {
	fs := newFS(t, 5)
	mk := func(p string, size units.Bytes, accesses int) {
		if _, err := fs.Create(p, size, t0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < accesses; i++ {
			if _, err := fs.Open(p, t0.Add(time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk("/small1", units.MB, 50)
	mk("/small2", units.MB, 5)
	mk("/big-hot", 10*units.GB, 100) // excluded by threshold despite heat
	p := SizeThresholdTiering{Threshold: units.GB}
	rep := EvaluateTiering(fs, p, 100*units.GB)
	if rep.FilesPromoted != 2 {
		t.Errorf("promoted = %d, want 2", rep.FilesPromoted)
	}
	bh, _ := fs.Stat("/big-hot")
	if bh.Tier != TierCapacity {
		t.Error("big file must stay on capacity tier")
	}
	// Coverage = 55/155.
	if rep.AccessCoverage < 0.3 || rep.AccessCoverage > 0.4 {
		t.Errorf("coverage = %v, want ~0.355", rep.AccessCoverage)
	}
	if rep.FastBytesFraction <= 0 {
		t.Error("fast bytes fraction should be positive")
	}
}

func TestTieringNames(t *testing.T) {
	if (FrequencyTiering{}).Name() == "" || (SizeThresholdTiering{}).Name() == "" {
		t.Error("policies must be named")
	}
}

func TestTieringEmptyFS(t *testing.T) {
	fs := newFS(t, 2)
	rep := EvaluateTiering(fs, FrequencyTiering{}, units.GB)
	if rep.AccessCoverage != 0 || rep.FastBytes != 0 {
		t.Error("empty FS tiering should be all zeros")
	}
}
