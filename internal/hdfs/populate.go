package hdfs

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// PopulateResult summarizes a namespace build.
type PopulateResult struct {
	// InputFiles / OutputFiles created.
	InputFiles, OutputFiles int
	// Accesses recorded against input files.
	Accesses int
	// Overwrites of existing outputs.
	Overwrites int
}

// PopulateFromTrace replays a trace's file activity into the simulated
// DFS: every distinct input path becomes a file at first sight (created
// with the size the first reading job observed), reads are recorded as
// accesses, and output paths are created or overwritten as jobs finish.
// This is the SWIM "pre-populate HDFS" step (§7: the replay tools
// "pre-populate HDFS using uniform synthetic data, scaled to the number of
// nodes in the cluster") with the uniform data replaced by the trace's own
// size distribution.
//
// The resulting FS carries the access counts that the tiering policies in
// this package and the §4 analyses consume.
func PopulateFromTrace(fs *FS, t *trace.Trace) (PopulateResult, error) {
	if fs == nil {
		return PopulateResult{}, errors.New("hdfs: nil filesystem")
	}
	if t.Len() == 0 {
		return PopulateResult{}, errors.New("hdfs: empty trace")
	}
	var res PopulateResult
	for _, j := range t.Jobs {
		if j.InputPath != "" {
			if _, ok := fs.Stat(j.InputPath); !ok {
				if _, err := fs.Create(j.InputPath, j.InputBytes, j.SubmitTime); err != nil {
					return res, fmt.Errorf("hdfs: populating input %s: %w", j.InputPath, err)
				}
				res.InputFiles++
			}
			if _, err := fs.Open(j.InputPath, j.SubmitTime); err != nil {
				return res, fmt.Errorf("hdfs: reading %s: %w", j.InputPath, err)
			}
			res.Accesses++
		}
		if j.OutputPath != "" {
			if _, ok := fs.Stat(j.OutputPath); ok {
				res.Overwrites++
			} else {
				res.OutputFiles++
			}
			if _, err := fs.Create(j.OutputPath, j.OutputBytes, j.FinishTime()); err != nil {
				return res, fmt.Errorf("hdfs: writing %s: %w", j.OutputPath, err)
			}
		}
	}
	if res.Accesses == 0 {
		return res, errors.New("hdfs: trace carries no input paths to populate from")
	}
	return res, nil
}
