package hdfs

import (
	"sort"

	"repro/internal/units"
)

// TieringPolicy decides which files live on the fast tier. The paper's §4.2
// observations motivate two concrete policies to compare:
//
//   - frequency tiering: promote the most-accessed files ("any data caching
//     policy that includes the frequently accessed files will bring
//     considerable benefit");
//   - size-threshold tiering: promote files below a size cutoff ("a viable
//     cache policy is to cache files whose size is less than a threshold",
//     which detaches fast-tier capacity growth from total data growth).
type TieringPolicy interface {
	// Assign partitions files between tiers given a fast-tier byte budget.
	// It mutates the files' Tier fields and returns fast-tier usage.
	Assign(files []*File, fastCapacity units.Bytes) units.Bytes
	// Name identifies the policy in reports.
	Name() string
}

// FrequencyTiering promotes files in descending access-count order until
// the budget is exhausted.
type FrequencyTiering struct{}

// Name implements TieringPolicy.
func (FrequencyTiering) Name() string { return "frequency" }

// Assign implements TieringPolicy.
func (FrequencyTiering) Assign(files []*File, fastCapacity units.Bytes) units.Bytes {
	order := make([]*File, len(files))
	copy(order, files)
	sort.SliceStable(order, func(i, k int) bool { return order[i].Accesses > order[k].Accesses })
	var used units.Bytes
	for _, f := range order {
		if f.Accesses > 0 && used+f.Size <= fastCapacity {
			f.Tier = TierFast
			used += f.Size
		} else {
			f.Tier = TierCapacity
		}
	}
	return used
}

// SizeThresholdTiering promotes every file smaller than Threshold,
// most-accessed first, within the budget.
type SizeThresholdTiering struct {
	Threshold units.Bytes
}

// Name implements TieringPolicy.
func (p SizeThresholdTiering) Name() string { return "size-threshold" }

// Assign implements TieringPolicy.
func (p SizeThresholdTiering) Assign(files []*File, fastCapacity units.Bytes) units.Bytes {
	order := make([]*File, 0, len(files))
	for _, f := range files {
		if f.Size < p.Threshold {
			order = append(order, f)
		} else {
			f.Tier = TierCapacity
		}
	}
	sort.SliceStable(order, func(i, k int) bool { return order[i].Accesses > order[k].Accesses })
	var used units.Bytes
	for _, f := range order {
		if used+f.Size <= fastCapacity {
			f.Tier = TierFast
			used += f.Size
		} else {
			f.Tier = TierCapacity
		}
	}
	return used
}

// TieringReport summarizes how well a tier assignment captures traffic.
type TieringReport struct {
	Policy string
	// FastBytes is fast-tier usage; FastBytesFraction is its share of all
	// stored bytes.
	FastBytes         units.Bytes
	FastBytesFraction float64
	// AccessCoverage is the fraction of historical accesses that would
	// have hit the fast tier under this assignment.
	AccessCoverage float64
	// FilesPromoted counts fast-tier files.
	FilesPromoted int
}

// EvaluateTiering applies the policy with the given budget and scores it
// against the access history accumulated in the FS.
func EvaluateTiering(fs *FS, policy TieringPolicy, fastCapacity units.Bytes) TieringReport {
	files := fs.Files()
	used := policy.Assign(files, fastCapacity)
	var totalAccesses, fastAccesses uint64
	promoted := 0
	for _, f := range files {
		totalAccesses += f.Accesses
		if f.Tier == TierFast {
			fastAccesses += f.Accesses
			promoted++
		}
	}
	rep := TieringReport{
		Policy:        policy.Name(),
		FastBytes:     used,
		FilesPromoted: promoted,
	}
	if total := fs.TotalStored(); total > 0 {
		rep.FastBytesFraction = float64(used) / float64(total)
	}
	if totalAccesses > 0 {
		rep.AccessCoverage = float64(fastAccesses) / float64(totalAccesses)
	}
	return rep
}
