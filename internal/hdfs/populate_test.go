package hdfs

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

func TestPopulateFromTrace(t *testing.T) {
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 12, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(Config{Datanodes: p.Machines, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PopulateFromTrace(fs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputFiles == 0 || res.OutputFiles == 0 {
		t.Fatalf("populate created nothing: %+v", res)
	}
	if res.Accesses != countInputs(tr) {
		t.Errorf("accesses = %d, want %d", res.Accesses, countInputs(tr))
	}
	if fs.FileCount() != res.InputFiles+res.OutputFiles {
		t.Errorf("fs has %d files, populate reports %d",
			fs.FileCount(), res.InputFiles+res.OutputFiles)
	}
	// CC-e re-accesses heavily: total accesses far exceed distinct files.
	if res.Accesses < res.InputFiles*2 {
		t.Errorf("accesses %d vs %d input files; expected heavy re-access",
			res.Accesses, res.InputFiles)
	}
	// The populated namespace drives tiering: frequency promotion must
	// capture a majority of accesses with a modest budget (Zipf skew).
	rep := EvaluateTiering(fs, FrequencyTiering{}, 100*units.GB)
	if rep.AccessCoverage < 0.5 {
		t.Errorf("frequency tiering coverage = %v, want > 0.5 given Zipf skew", rep.AccessCoverage)
	}
}

func countInputs(tr *trace.Trace) int {
	n := 0
	for _, j := range tr.Jobs {
		if j.InputPath != "" {
			n++
		}
	}
	return n
}

func TestPopulateErrors(t *testing.T) {
	fs, err := New(Config{Datanodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PopulateFromTrace(nil, &trace.Trace{}); err == nil {
		t.Error("nil fs should error")
	}
	if _, err := PopulateFromTrace(fs, trace.New(trace.Meta{Name: "e"})); err == nil {
		t.Error("empty trace should error")
	}
	// Pathless workload.
	p, err := profile.ByName("FB-2009")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 1, Duration: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PopulateFromTrace(fs, tr); err == nil {
		t.Error("pathless trace should error")
	}
}

func TestPopulateOverwrites(t *testing.T) {
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := trace.New(trace.Meta{Name: "ow", Machines: 2, Start: start, Length: time.Hour})
	for i := int64(1); i <= 3; i++ {
		tr.Add(&trace.Job{
			ID:          i,
			SubmitTime:  start.Add(time.Duration(i) * time.Minute),
			Duration:    time.Second,
			InputBytes:  units.MB,
			OutputBytes: units.MB,
			MapTasks:    1, MapTime: 1,
			InputPath:  "/in/shared",
			OutputPath: "/out/daily", // same output refreshed thrice
		})
	}
	fs, err := New(Config{Datanodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PopulateFromTrace(fs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputFiles != 1 || res.Overwrites != 2 {
		t.Errorf("outputs/overwrites = %d/%d, want 1/2", res.OutputFiles, res.Overwrites)
	}
	if res.InputFiles != 1 || res.Accesses != 3 {
		t.Errorf("inputs/accesses = %d/%d, want 1/3", res.InputFiles, res.Accesses)
	}
}
