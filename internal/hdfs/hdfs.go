// Package hdfs simulates the distributed filesystem substrate under the
// workloads: a namespace of files split into fixed-size blocks, replicated
// across datanodes, with per-file access accounting and a two-tier
// (fast/capacity) storage assignment. Section 4.2 of the paper argues that
// Zipf-skewed access frequencies "suggest a tiered storage architecture
// should be explored" and that uniform treatment of all datasets — the
// design assumption of HDFS — is no longer justified; this package is the
// testbed for those implications (see internal/cache for eviction policy
// simulation on top of it).
package hdfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/units"
)

// DefaultBlockSize matches the era's common HDFS configuration.
const DefaultBlockSize = 256 * units.MB

// Tier identifies the storage medium a file is assigned to.
type Tier int

// Storage tiers of the simulated cluster.
const (
	// TierCapacity is the default spinning-disk tier.
	TierCapacity Tier = iota
	// TierFast is the small, fast tier (SSD/memory) that a tiering policy
	// promotes hot files into.
	TierFast
)

func (t Tier) String() string {
	if t == TierFast {
		return "fast"
	}
	return "capacity"
}

// File is one namespace entry.
type File struct {
	Path     string
	Size     units.Bytes
	Blocks   []BlockID
	Created  time.Time
	Accesses uint64
	LastRead time.Time
	Tier     Tier
}

// BlockID identifies a block.
type BlockID int64

// blockInfo records a block's placement.
type blockInfo struct {
	file     *File
	size     units.Bytes
	replicas []int // datanode ids
}

// Config sizes the simulated DFS.
type Config struct {
	// Datanodes in the cluster; must be positive.
	Datanodes int
	// ReplicationFactor for new blocks (default 3, capped at Datanodes).
	ReplicationFactor int
	// BlockSize (default DefaultBlockSize).
	BlockSize units.Bytes
	// Seed for placement decisions.
	Seed int64
}

// FS is the simulated filesystem. Not safe for concurrent use; the
// replay and analysis drivers are single-threaded event loops.
type FS struct {
	cfg     Config
	files   map[string]*File
	blocks  map[BlockID]*blockInfo
	nodeUse []units.Bytes // bytes stored per datanode (incl. replicas)
	nextID  BlockID
	rng     *rand.Rand
}

// New creates an empty simulated DFS.
func New(cfg Config) (*FS, error) {
	if cfg.Datanodes <= 0 {
		return nil, errors.New("hdfs: need at least one datanode")
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.ReplicationFactor > cfg.Datanodes {
		cfg.ReplicationFactor = cfg.Datanodes
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	return &FS{
		cfg:     cfg,
		files:   make(map[string]*File),
		blocks:  make(map[BlockID]*blockInfo),
		nodeUse: make([]units.Bytes, cfg.Datanodes),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Create writes a new file of the given size, splitting it into blocks and
// placing replicas on distinct datanodes. Creating an existing path
// truncates and rewrites it (HDFS overwrite semantics for job output).
func (fs *FS) Create(path string, size units.Bytes, now time.Time) (*File, error) {
	if path == "" {
		return nil, errors.New("hdfs: empty path")
	}
	if size < 0 {
		return nil, fmt.Errorf("hdfs: negative size for %s", path)
	}
	if old, ok := fs.files[path]; ok {
		fs.removeBlocks(old)
	}
	f := &File{Path: path, Size: size, Created: now, Tier: TierCapacity}
	remaining := size
	for remaining > 0 || len(f.Blocks) == 0 {
		b := remaining
		if b > fs.cfg.BlockSize {
			b = fs.cfg.BlockSize
		}
		if b < 0 {
			b = 0
		}
		id := fs.nextID
		fs.nextID++
		info := &blockInfo{file: f, size: b, replicas: fs.placeReplicas()}
		fs.blocks[id] = info
		for _, n := range info.replicas {
			fs.nodeUse[n] += b
		}
		f.Blocks = append(f.Blocks, id)
		remaining -= b
		if remaining <= 0 {
			break
		}
	}
	fs.files[path] = f
	return f, nil
}

// placeReplicas picks ReplicationFactor distinct datanodes, preferring the
// least-loaded ones with randomization (a simplification of HDFS's
// rack-aware placement that preserves its load-spreading property).
func (fs *FS) placeReplicas() []int {
	n := fs.cfg.Datanodes
	r := fs.cfg.ReplicationFactor
	// Sample 2r candidates (or all nodes), take the r least-loaded.
	cand := r * 2
	if cand > n {
		cand = n
	}
	perm := fs.rng.Perm(n)[:cand]
	sort.Slice(perm, func(i, k int) bool { return fs.nodeUse[perm[i]] < fs.nodeUse[perm[k]] })
	out := make([]int, r)
	copy(out, perm[:r])
	return out
}

// removeBlocks releases a file's blocks.
func (fs *FS) removeBlocks(f *File) {
	for _, id := range f.Blocks {
		info := fs.blocks[id]
		if info == nil {
			continue
		}
		for _, n := range info.replicas {
			fs.nodeUse[n] -= info.size
		}
		delete(fs.blocks, id)
	}
	f.Blocks = nil
}

// Open records a read access to the file and returns it.
func (fs *FS) Open(path string, now time.Time) (*File, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: %s: no such file", path)
	}
	f.Accesses++
	f.LastRead = now
	return f, nil
}

// Delete removes a file.
func (fs *FS) Delete(path string) error {
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("hdfs: %s: no such file", path)
	}
	fs.removeBlocks(f)
	delete(fs.files, path)
	return nil
}

// Stat returns the file without recording an access.
func (fs *FS) Stat(path string) (*File, bool) {
	f, ok := fs.files[path]
	return f, ok
}

// FileCount returns the number of files.
func (fs *FS) FileCount() int { return len(fs.files) }

// TotalStored returns logical bytes stored (before replication).
func (fs *FS) TotalStored() units.Bytes {
	var t units.Bytes
	for _, f := range fs.files {
		t += f.Size
	}
	return t
}

// RawStored returns physical bytes stored including replicas.
func (fs *FS) RawStored() units.Bytes {
	var t units.Bytes
	for _, u := range fs.nodeUse {
		t += u
	}
	return t
}

// NodeImbalance reports max/mean of per-datanode stored bytes — a check
// that placement spreads load (1.0 is perfect balance).
func (fs *FS) NodeImbalance() float64 {
	var sum, max units.Bytes
	for _, u := range fs.nodeUse {
		sum += u
		if u > max {
			max = u
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(fs.nodeUse))
	return float64(max) / mean
}

// Files returns all files sorted by path (stable iteration for callers).
func (fs *FS) Files() []*File {
	out := make([]*File, 0, len(fs.files))
	for _, f := range fs.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Path < out[k].Path })
	return out
}

// ReplicaNodes returns the sorted set of datanodes holding replicas of the
// file's first maxBlocks blocks (0 means all blocks). Schedulers use this
// for data-locality placement: a map task reading the file runs "local"
// when it lands on one of these nodes.
func (fs *FS) ReplicaNodes(path string, maxBlocks int) []int {
	f, ok := fs.files[path]
	if !ok {
		return nil
	}
	blocks := f.Blocks
	if maxBlocks > 0 && len(blocks) > maxBlocks {
		blocks = blocks[:maxBlocks]
	}
	seen := make(map[int]bool)
	for _, id := range blocks {
		info := fs.blocks[id]
		if info == nil {
			continue
		}
		for _, n := range info.replicas {
			seen[n] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Datanodes returns the cluster size.
func (fs *FS) Datanodes() int { return fs.cfg.Datanodes }
