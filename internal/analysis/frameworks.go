package analysis

import (
	"errors"
	"sort"

	"repro/internal/trace"
)

// FrameworkShare is one framework's slice of a workload, the quantity
// behind Figure 10's coloring and the §8.4 summary: "The cluster load
// that comes from these frameworks is up to 80% and at least 20%".
type FrameworkShare struct {
	Framework string
	// JobsFraction, BytesFraction, TaskTimeFraction mirror the three
	// weightings of Figure 10.
	JobsFraction     float64
	BytesFraction    float64
	TaskTimeFraction float64
}

// FrameworkAnalysis groups a workload's activity by programming framework.
type FrameworkAnalysis struct {
	Workload string
	// Shares sorted by descending JobsFraction.
	Shares []FrameworkShare
}

// Classifier maps a job-name first word to a framework label ("Hive",
// "Pig", "Oozie", "Native", ...). Empty return means unknown, which is
// grouped under "Native" — hand-written MapReduce is the default in the
// study's taxonomy.
type Classifier func(firstWord string) string

// StandardClassifier recognizes the framework-generated name prefixes the
// paper describes (§6.1): Hive emits SQL-operator words, Pig emits
// "PigLatin:...", Oozie emits "oozie:launcher:...".
func StandardClassifier(firstWord string) string {
	switch firstWord {
	case "insert", "select", "from", "create", "drop", "alter":
		return "Hive"
	case "piglatin", "pig":
		return "Pig"
	case "oozie":
		return "Oozie"
	default:
		return ""
	}
}

// Frameworks computes per-framework shares of jobs, bytes, and task-time
// for a named trace, using the classifier (nil means StandardClassifier).
func Frameworks(t *trace.Trace, classify Classifier) (*FrameworkAnalysis, error) {
	if !t.HasNames() {
		return nil, errors.New("analysis: trace carries no job names")
	}
	if classify == nil {
		classify = StandardClassifier
	}
	type agg struct{ jobs, bytes, taskTime float64 }
	groups := map[string]*agg{}
	var totJobs, totBytes, totTask float64
	for _, j := range t.Jobs {
		fw := classify(FirstWord(j.Name))
		if fw == "" {
			fw = "Native"
		}
		g := groups[fw]
		if g == nil {
			g = &agg{}
			groups[fw] = g
		}
		g.jobs++
		g.bytes += float64(j.TotalBytes())
		g.taskTime += float64(j.TotalTaskTime())
		totJobs++
		totBytes += float64(j.TotalBytes())
		totTask += float64(j.TotalTaskTime())
	}
	if totJobs == 0 {
		return nil, errors.New("analysis: no named jobs")
	}
	out := &FrameworkAnalysis{Workload: t.Meta.Name}
	for fw, g := range groups {
		out.Shares = append(out.Shares, FrameworkShare{
			Framework:        fw,
			JobsFraction:     g.jobs / totJobs,
			BytesFraction:    safeDiv(g.bytes, totBytes),
			TaskTimeFraction: safeDiv(g.taskTime, totTask),
		})
	}
	sort.Slice(out.Shares, func(i, k int) bool {
		if out.Shares[i].JobsFraction != out.Shares[k].JobsFraction {
			return out.Shares[i].JobsFraction > out.Shares[k].JobsFraction
		}
		return out.Shares[i].Framework < out.Shares[k].Framework
	})
	return out, nil
}

// QueryFrameworkLoad returns the combined task-time share of the
// query-like frameworks (everything except Native) — the §8.4 number
// ("up to 80% and at least 20%").
func (f *FrameworkAnalysis) QueryFrameworkLoad() float64 {
	var sum float64
	for _, s := range f.Shares {
		if s.Framework != "Native" {
			sum += s.TaskTimeFraction
		}
	}
	return sum
}

// TopTwoJobsShare returns the combined job share of the two largest
// frameworks: §6.1 observes that "for all workloads, two frameworks
// account for a dominant majority of jobs".
func (f *FrameworkAnalysis) TopTwoJobsShare() float64 {
	var sum float64
	for i, s := range f.Shares {
		if i >= 2 {
			break
		}
		sum += s.JobsFraction
	}
	return sum
}
