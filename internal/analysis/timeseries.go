package analysis

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// TimeSeries is the hourly-binned view of a workload behind Figures 7-9:
// per hour, the number of jobs submitted, the aggregate I/O (input +
// shuffle + output bytes) of jobs submitted, and their aggregate map +
// reduce task-time. All series are indexed by hour since trace start and
// attribute a job entirely to its submission hour, as the paper's
// submission-pattern columns do.
type TimeSeries struct {
	Workload string
	Start    time.Time
	// Jobs[h], Bytes[h], TaskSeconds[h] for hour h, attributed to the
	// job's submission hour (the convention of Figure 7's first three
	// columns: "jobs submitted in that hour").
	Jobs        []float64
	Bytes       []float64
	TaskSeconds []float64
	// TaskSecondsSpread[h] attributes each job's task-time uniformly over
	// its execution window instead. This is the load the cluster actually
	// carries hour by hour, bounded by slot capacity — the appropriate
	// series for the Figure 8 burstiness metric, where a day-long job
	// submitted in one hour should not register as an instantaneous
	// million-task-second spike.
	TaskSecondsSpread []float64
}

// TimeSeriesBuilder accumulates the hourly series incrementally, in
// memory proportional to the trace length in hours — never the job count
// — so core.AnalyzeSource can build Figures 7–9 in one streaming pass.
// BinHourly delegates to it, which is what keeps streaming and
// materialized series identical.
//
// The builder is a mergeable partial aggregate: per-hour job counts and
// byte totals accumulate in integers and the fractional task-time bins
// in stats.ExactSum, so the bins are exact, order-independent sums.
// Observing a job stream in shards and Merge-ing the shard builders (in
// any grouping) yields a Series() bit-identical to observing the stream
// sequentially — the contract the shard-parallel analysis path relies
// on, including at shard-boundary hours where two shards contribute to
// the same bin.
type TimeSeriesBuilder struct {
	workload string
	start    time.Time
	hours    int
	jobs     []int64
	bytes    []units.Bytes
	task     []stats.ExactSum
	spread   []stats.ExactSum
}

// NewTimeSeriesBuilder starts an hourly binning for a trace of the given
// length starting at start. Lengths under two hours are rejected, as in
// BinHourly.
func NewTimeSeriesBuilder(workload string, start time.Time, length time.Duration) (*TimeSeriesBuilder, error) {
	hours := int(length.Hours()) + 1
	if hours < 2 {
		return nil, errors.New("analysis: trace too short for hourly binning")
	}
	return &TimeSeriesBuilder{
		workload: workload,
		start:    start,
		hours:    hours,
		jobs:     make([]int64, hours),
		bytes:    make([]units.Bytes, hours),
		task:     make([]stats.ExactSum, hours),
		spread:   make([]stats.ExactSum, hours),
	}, nil
}

// Observe folds one job into the series. Jobs submitted before the
// series start are dropped; jobs past the horizon clamp into the final
// bin, exactly as BinHourly always did.
func (b *TimeSeriesBuilder) Observe(j *trace.Job) {
	h := int(j.SubmitTime.Sub(b.start).Hours())
	if h < 0 {
		return
	}
	if h >= b.hours {
		h = b.hours - 1
	}
	b.jobs[h]++
	b.bytes[h] += j.TotalBytes()
	b.task[h].Add(float64(j.TotalTaskTime()))
	spreadTaskTime(b.spread, b.start, j)
}

// Merge folds another builder's bins into this one. Both builders must
// cover the same workload, origin, and hour count (the agreement
// contract: shards of one trace, split with the full trace's metadata).
// The argument is not modified.
func (b *TimeSeriesBuilder) Merge(o *TimeSeriesBuilder) error {
	if b.workload != o.workload || !b.start.Equal(o.start) || b.hours != o.hours {
		return fmt.Errorf("analysis: cannot merge series of different traces (%q from %v over %dh vs %q from %v over %dh)",
			b.workload, b.start, b.hours, o.workload, o.start, o.hours)
	}
	for h := 0; h < b.hours; h++ {
		b.jobs[h] += o.jobs[h]
		b.bytes[h] += o.bytes[h]
		b.task[h].Merge(&o.task[h])
		b.spread[h].Merge(&o.spread[h])
	}
	return nil
}

// Series materializes the accumulated hourly view. It does not modify
// the builder, so a frozen builder can serve concurrent readers.
func (b *TimeSeriesBuilder) Series() *TimeSeries {
	ts := &TimeSeries{
		Workload:          b.workload,
		Start:             b.start,
		Jobs:              make([]float64, b.hours),
		Bytes:             make([]float64, b.hours),
		TaskSeconds:       make([]float64, b.hours),
		TaskSecondsSpread: make([]float64, b.hours),
	}
	for h := 0; h < b.hours; h++ {
		ts.Jobs[h] = float64(b.jobs[h])
		ts.Bytes[h] = float64(b.bytes[h])
		ts.TaskSeconds[h] = b.task[h].Sum()
		ts.TaskSecondsSpread[h] = b.spread[h].Sum()
	}
	return ts
}

// BinHourly builds the hourly series for a trace. The number of bins is
// ceil(trace length); traces shorter than two hours are rejected.
func BinHourly(t *trace.Trace) (*TimeSeries, error) {
	if t.Len() == 0 {
		return nil, errors.New("analysis: empty trace")
	}
	length := t.Meta.Length
	if length <= 0 {
		start, end := t.Span()
		length = end.Sub(start)
	}
	b, err := NewTimeSeriesBuilder(t.Meta.Name, t.Meta.Start, length)
	if err != nil {
		return nil, err
	}
	for _, j := range t.Jobs {
		b.Observe(j)
	}
	return b.Series(), nil
}

// spreadTaskTime distributes a job's task-time uniformly over the hourly
// bins its execution window [submit, submit+duration) overlaps. Each
// per-bin contribution is a pure function of the job, so the exact-sum
// bins are independent of observation order.
func spreadTaskTime(bins []stats.ExactSum, start time.Time, j *trace.Job) {
	total := float64(j.TotalTaskTime())
	if total <= 0 {
		return
	}
	t0 := j.SubmitTime.Sub(start).Hours()
	dur := j.Duration.Hours()
	if dur <= 0 {
		dur = 1.0 / 3600 // degenerate durations get one second
	}
	t1 := t0 + dur
	rate := total / dur // task-seconds per hour of execution
	for t := t0; t < t1; {
		h := int(t)
		if h < 0 {
			t = 0
			continue
		}
		if h >= len(bins) {
			// Execution spills past the trace horizon; attribute the
			// remainder to the final bin so totals are conserved.
			bins[len(bins)-1].Add(rate * (t1 - t))
			return
		}
		segEnd := math.Min(float64(h+1), t1)
		bins[h].Add(rate * (segEnd - t))
		t = segEnd
	}
}

// Hours returns the number of hourly bins.
func (ts *TimeSeries) Hours() int { return len(ts.Jobs) }

// Week returns the slice of the series covering the given 7-day week
// (0-based), for rendering Figure 7's one-week views. It errors if the
// series does not contain that week in full.
func (ts *TimeSeries) Week(week int) (*TimeSeries, error) {
	lo := week * 7 * 24
	hi := lo + 7*24
	if week < 0 || hi > len(ts.Jobs) {
		return nil, errors.New("analysis: week out of range")
	}
	return &TimeSeries{
		Workload:          ts.Workload,
		Start:             ts.Start.Add(time.Duration(lo) * time.Hour),
		Jobs:              ts.Jobs[lo:hi],
		Bytes:             ts.Bytes[lo:hi],
		TaskSeconds:       ts.TaskSeconds[lo:hi],
		TaskSecondsSpread: ts.TaskSecondsSpread[lo:hi],
	}, nil
}

// DiurnalStrengths reports the 24-hour periodicity strength of each
// dimension (see stats.DiurnalStrength); the paper observes diurnal
// patterns "revealed by Fourier analysis" for some workloads.
func (ts *TimeSeries) DiurnalStrengths() (jobs, bytes, taskSeconds float64, err error) {
	jobs, err = stats.DiurnalStrength(ts.Jobs)
	if err != nil {
		return 0, 0, 0, err
	}
	bytes, err = stats.DiurnalStrength(ts.Bytes)
	if err != nil {
		return 0, 0, 0, err
	}
	taskSeconds, err = stats.DiurnalStrength(ts.TaskSeconds)
	if err != nil {
		return 0, 0, 0, err
	}
	return jobs, bytes, taskSeconds, nil
}

// BurstinessOf computes the Figure 8 burstiness curve of the task-time
// dimension, the one the paper plots ("cumulative distribution of
// task-time per hour ... normalized by the median task-time per hour").
// The execution-spread series is used: booking a multi-hour job's entire
// task-time to its submission minute would overstate hourly load by orders
// of magnitude for the small CC clusters.
func (ts *TimeSeries) BurstinessOf() (stats.BurstinessCurve, error) {
	return stats.Burstiness(ts.TaskSecondsSpread)
}

// Correlations is the Figure 9 analysis: pairwise Pearson correlation
// between the three hourly submission-pattern series.
type Correlations struct {
	Workload string
	// JobsBytes is corr(jobs/hr, bytes/hr); the paper's average is 0.21.
	JobsBytes float64
	// JobsTaskSeconds is corr(jobs/hr, task-s/hr); paper average 0.14.
	JobsTaskSeconds float64
	// BytesTaskSeconds is corr(bytes/hr, task-s/hr); paper average 0.62 —
	// "by far the strongest", showing the workloads are data-centric.
	BytesTaskSeconds float64
}

// Correlate computes Figure 9 for a trace's hourly series.
func (ts *TimeSeries) Correlate() (*Correlations, error) {
	jb, err := stats.Pearson(ts.Jobs, ts.Bytes)
	if err != nil {
		return nil, err
	}
	jt, err := stats.Pearson(ts.Jobs, ts.TaskSeconds)
	if err != nil {
		return nil, err
	}
	bt, err := stats.Pearson(ts.Bytes, ts.TaskSeconds)
	if err != nil {
		return nil, err
	}
	return &Correlations{
		Workload:         ts.Workload,
		JobsBytes:        jb,
		JobsTaskSeconds:  jt,
		BytesTaskSeconds: bt,
	}, nil
}
