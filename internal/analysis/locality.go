package analysis

import (
	"errors"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// ReaccessIntervals is the Figure 5 analysis: the distributions of time
// between consecutive accesses to the same data. The paper reports that
// "75% of the re-accesses take place within 6 hours", motivating
// LRU-family cache eviction.
type ReaccessIntervals struct {
	Workload string
	// InputInput is the CDF of intervals (in seconds) between successive
	// reads of the same input file.
	InputInput *stats.CDF
	// OutputInput is the CDF of intervals between a file being written as
	// output and re-read as some job's input. Nil when the trace carries
	// no output paths.
	OutputInput *stats.CDF
}

// Intervals computes Figure 5 for a trace. The input-input panel requires
// input paths; the output-input panel additionally requires output paths.
func Intervals(t *trace.Trace) (*ReaccessIntervals, error) {
	if !t.HasPaths() {
		return nil, errors.New("analysis: trace carries no input paths")
	}
	lastInputRead := make(map[string]time.Time)
	lastOutputWrite := make(map[string]time.Time)
	var inIn, outIn []float64
	for _, j := range t.Jobs {
		if j.InputPath != "" {
			if prev, ok := lastInputRead[j.InputPath]; ok {
				inIn = append(inIn, j.SubmitTime.Sub(prev).Seconds())
			}
			if w, ok := lastOutputWrite[j.InputPath]; ok {
				if d := j.SubmitTime.Sub(w).Seconds(); d >= 0 {
					outIn = append(outIn, d)
				}
			}
			lastInputRead[j.InputPath] = j.SubmitTime
		}
		if j.OutputPath != "" {
			// The output materializes when the job finishes.
			lastOutputWrite[j.OutputPath] = j.FinishTime()
		}
	}
	if len(inIn) == 0 {
		return nil, errors.New("analysis: no re-accesses observed")
	}
	res := &ReaccessIntervals{
		Workload:   t.Meta.Name,
		InputInput: stats.NewCDF(inIn),
	}
	if len(outIn) > 0 {
		res.OutputInput = stats.NewCDF(outIn)
	}
	return res, nil
}

// FractionWithin returns the fraction of input-input re-accesses occurring
// within d. Use FractionWithin(6*time.Hour) to check the paper's 75%
// observation.
func (r *ReaccessIntervals) FractionWithin(d time.Duration) float64 {
	return r.InputInput.P(d.Seconds())
}
