package analysis

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/kmeans"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// JobType is one Table-2 row recovered from a trace: a k-means cluster of
// jobs in the six-dimensional space (input, shuffle, output, duration,
// map time, reduce time), with a centroid expressed in natural units and
// a mechanically assigned label in the paper's vocabulary.
type JobType struct {
	Count    int
	Input    units.Bytes
	Shuffle  units.Bytes
	Output   units.Bytes
	Duration time.Duration
	MapTime  units.TaskSeconds
	Reduce   units.TaskSeconds
	Label    string
}

// JobClusters is the Table 2 analysis result for one workload.
type JobClusters struct {
	Workload string
	// Types sorted by descending population.
	Types []JobType
	// K chosen by the elbow rule.
	K int
	// SmallJobFraction is the population share of the largest cluster.
	SmallJobFraction float64
	// ResidualVariance of the final clustering (standardized space).
	ResidualVariance float64
}

// ClusterConfig controls the Table 2 analysis.
type ClusterConfig struct {
	// MaxK bounds the elbow search (default 12, enough for Table 2's
	// largest workload at k=10).
	MaxK int
	// MinGain is the diminishing-returns threshold for the elbow rule
	// (default 0.12).
	MinGain float64
	// Seed fixes the clustering.
	Seed int64
	// MaxJobs caps how many jobs are clustered; larger traces are sampled
	// uniformly (deterministically) to bound run time. Zero means 50000.
	MaxJobs int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.MaxK <= 0 {
		c.MaxK = 12
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.12
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 50000
	}
	return c
}

// ClusterJobs reproduces the §6.2 methodology on a trace: standardize the
// six job dimensions in log space, k-means with k chosen by incrementing
// until diminishing returns, then label the discovered job types.
func ClusterJobs(t *trace.Trace, cfg ClusterConfig) (*JobClusters, error) {
	cfg = cfg.withDefaults()
	if t.Len() < 2 {
		return nil, errors.New("analysis: too few jobs to cluster")
	}
	jobs := t.Jobs
	if len(jobs) > cfg.MaxJobs {
		// Deterministic uniform thinning.
		stride := float64(len(jobs)) / float64(cfg.MaxJobs)
		sampled := make([]*trace.Job, 0, cfg.MaxJobs)
		for i := 0; i < cfg.MaxJobs; i++ {
			sampled = append(sampled, jobs[int(float64(i)*stride)])
		}
		jobs = sampled
	}
	raw := make([][]float64, len(jobs))
	for i, j := range jobs {
		raw[i] = j.Features()
	}
	var std kmeans.Standardizer
	if err := std.Fit(raw); err != nil {
		return nil, err
	}
	pts, err := std.Transform(raw)
	if err != nil {
		return nil, err
	}
	res, err := kmeans.SelectK(pts, cfg.MaxK, cfg.MinGain, kmeans.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	out := &JobClusters{Workload: t.Meta.Name, K: res.K, ResidualVariance: res.ResidualVariance}
	scale := float64(t.Len()) / float64(len(jobs)) // undo sampling in counts
	var types []JobType
	for c := 0; c < res.K; c++ {
		if res.Sizes[c] == 0 {
			continue
		}
		nat, err := std.Inverse(res.Centroids[c])
		if err != nil {
			return nil, err
		}
		jt := JobType{
			Count:    int(float64(res.Sizes[c])*scale + 0.5),
			Input:    units.Bytes(nat[0]),
			Shuffle:  units.Bytes(nat[1]),
			Output:   units.Bytes(nat[2]),
			Duration: time.Duration(nat[3] * float64(time.Second)),
			MapTime:  units.TaskSeconds(nat[4]),
			Reduce:   units.TaskSeconds(nat[5]),
		}
		jt.Label = labelJobType(jt)
		types = append(types, jt)
	}
	relabelSmallSplits(types)
	// k-means often splits a dominant unbalanced cluster (the >90%
	// small-jobs cloud) to minimize SSE; Table 2 reports job *types*, so
	// merge clusters that label identically, population-weighting their
	// centroids.
	out.Types = mergeByLabel(types)
	sort.Slice(out.Types, func(i, k int) bool { return out.Types[i].Count > out.Types[k].Count })
	total := 0
	for _, jt := range out.Types {
		total += jt.Count
	}
	if total > 0 {
		out.SmallJobFraction = float64(out.Types[0].Count) / float64(total)
	}
	return out, nil
}

// relabelSmallSplits handles a k-means artifact: the dominant small-jobs
// cloud often splits into two or three sub-clusters whose upper half would
// label as a transform type by absolute size. A sub-cluster is really part
// of the small-jobs population when its centroid sits within a moderate
// multiplicative factor of the smallest cluster while the true heavy job
// types sit orders of magnitude above it (compare Table 2: small-jobs
// centroids vs their workload's next type differ by 100x-10^6x).
func relabelSmallSplits(types []JobType) {
	if len(types) < 2 {
		return
	}
	minBytes := units.Bytes(0)
	for i, jt := range types {
		tot := jt.Input + jt.Shuffle + jt.Output
		if i == 0 || tot < minBytes {
			minBytes = tot
		}
	}
	if minBytes < 1 {
		minBytes = 1
	}
	for i := range types {
		tot := types[i].Input + types[i].Shuffle + types[i].Output
		if tot <= minBytes*50 && types[i].Duration < 15*time.Minute {
			types[i].Label = "Small jobs"
		}
	}
}

// mergeByLabel combines job types that received the same label into one,
// with count-weighted centroid averages.
func mergeByLabel(types []JobType) []JobType {
	byLabel := make(map[string]*JobType)
	var order []string
	for _, jt := range types {
		acc, ok := byLabel[jt.Label]
		if !ok {
			cp := jt
			byLabel[jt.Label] = &cp
			order = append(order, jt.Label)
			continue
		}
		na, nb := float64(acc.Count), float64(jt.Count)
		tot := na + nb
		wavg := func(a, b float64) float64 { return (a*na + b*nb) / tot }
		acc.Input = units.Bytes(wavg(float64(acc.Input), float64(jt.Input)))
		acc.Shuffle = units.Bytes(wavg(float64(acc.Shuffle), float64(jt.Shuffle)))
		acc.Output = units.Bytes(wavg(float64(acc.Output), float64(jt.Output)))
		acc.Duration = time.Duration(wavg(float64(acc.Duration), float64(jt.Duration)))
		acc.MapTime = units.TaskSeconds(wavg(float64(acc.MapTime), float64(jt.MapTime)))
		acc.Reduce = units.TaskSeconds(wavg(float64(acc.Reduce), float64(jt.Reduce)))
		acc.Count += jt.Count
	}
	out := make([]JobType, 0, len(order))
	for _, l := range order {
		out = append(out, *byLabel[l])
	}
	return out
}

// labelJobType assigns a human-readable label using the vocabulary of
// Table 2: "Small jobs", map-only variants, and the transform / aggregate
// / expand taxonomy derived from the shuffle-vs-input and
// output-vs-shuffle data ratios.
func labelJobType(jt JobType) string {
	total := jt.Input + jt.Shuffle + jt.Output
	if total < 10*units.GB && jt.Duration < 10*time.Minute {
		return "Small jobs"
	}
	mapOnly := jt.Reduce < 1 && jt.Shuffle < units.MB
	dur := formatCoarse(jt.Duration)
	if mapOnly {
		switch {
		case jt.Output < jt.Input/100:
			return "Map only summary, " + dur
		case jt.Input >= units.TB:
			return "Map only, huge"
		default:
			return "Map only transform, " + dur
		}
	}
	// Stage ratios: expansion vs aggregation at map (input->shuffle) and
	// reduce (shuffle->output) stages.
	mapExpand := jt.Shuffle > jt.Input*2
	mapAggregate := jt.Shuffle < jt.Input/2
	reduceExpand := jt.Output > jt.Shuffle*2
	reduceAggregate := jt.Output < jt.Shuffle/2
	switch {
	case mapExpand && reduceAggregate:
		return "Expand and aggregate"
	case mapExpand && !reduceAggregate:
		return "Expand and transform"
	case mapAggregate && reduceExpand:
		return "Aggregate and expand"
	case mapAggregate:
		return "Aggregate, " + dur
	case reduceAggregate:
		return "Transform and aggregate"
	default:
		return "Transform, " + dur
	}
}

// formatCoarse renders durations at the coarse granularity of Table 2's
// labels ("45 min", "2 hrs", "3 days").
func formatCoarse(d time.Duration) string {
	switch {
	case d >= 36*time.Hour:
		return fmt.Sprintf("%d days", int(d.Hours()/24+0.5))
	case d >= time.Hour:
		return fmt.Sprintf("%d hrs", int(d.Hours()+0.5))
	default:
		m := int(d.Minutes() + 0.5)
		if m < 1 {
			m = 1
		}
		return fmt.Sprintf("%d min", m)
	}
}

// CompareMixtures measures how close a recovered job-type mixture is to a
// reference one, as the K-S distance between the two population-weighted
// log-total-bytes distributions of the centroids. Used to check that
// clustering a generated trace recovers Table 2's structure.
func CompareMixtures(a, b *JobClusters) float64 {
	sample := func(jc *JobClusters) *stats.CDF {
		var xs []float64
		for _, t := range jc.Types {
			v := float64(t.Input + t.Shuffle + t.Output)
			if v < 1 {
				v = 1
			}
			// Weight by population via repetition, capped so giant
			// small-jobs clusters do not swamp memory.
			reps := t.Count
			if reps > 1000 {
				reps = 1000
			}
			for i := 0; i < reps; i++ {
				xs = append(xs, math.Log(v))
			}
		}
		return stats.NewCDF(xs)
	}
	return stats.KSDistance(sample(a), sample(b))
}
