// Package analysis implements the paper's measurement methodology: each
// exported function reproduces one figure or table of the study from a
// workload trace — data access patterns (§4, Figures 1–6), temporal
// patterns (§5, Figures 7–9), and computation patterns (§6, Figure 10 and
// Table 2).
//
// Figures 1, 7–9, and 10 are also available as incremental builders
// (DataSizeBuilder, TimeSeriesBuilder, NamesBuilder) so core.AnalyzeSource
// can compute them in one pass over a streamed trace; the whole-trace
// functions are thin wrappers over the builders, which is what guarantees
// streaming and materialized results agree.
package analysis

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// DataSizes is the Figure 1 analysis for one workload: empirical
// distributions of per-job input, shuffle, and output bytes. The
// distributions are exact CDFs in materialized mode and fixed-memory
// quantile sketches in bounded-memory streaming mode.
type DataSizes struct {
	Workload string
	Input    stats.Distribution
	Shuffle  stats.Distribution
	Output   stats.Distribution
}

// DataSizeBuilder accumulates Figure 1 incrementally. In exact mode it
// collects the three per-job values (24 B per job, far below retaining
// Job records); in sketch mode it feeds fixed-memory quantile sketches,
// making memory independent of job count at ≤ half-bin relative quantile
// error (stats.DefaultBinsPerDecade).
type DataSizeBuilder struct {
	workload     string
	sketch       bool
	in, sh, out  []float64
	hin, hsh, ho *stats.QuantileSketch
	n            int
}

// NewDataSizeBuilder starts a Figure 1 accumulation. sketch selects the
// fixed-memory mode.
func NewDataSizeBuilder(workload string, sketch bool) *DataSizeBuilder {
	b := &DataSizeBuilder{workload: workload, sketch: sketch}
	if sketch {
		b.hin = stats.NewQuantileSketch(0)
		b.hsh = stats.NewQuantileSketch(0)
		b.ho = stats.NewQuantileSketch(0)
	}
	return b
}

// Observe folds one job in.
func (b *DataSizeBuilder) Observe(j *trace.Job) {
	b.n++
	if b.sketch {
		b.hin.Observe(float64(j.InputBytes))
		b.hsh.Observe(float64(j.ShuffleBytes))
		b.ho.Observe(float64(j.OutputBytes))
		return
	}
	b.in = append(b.in, float64(j.InputBytes))
	b.sh = append(b.sh, float64(j.ShuffleBytes))
	b.out = append(b.out, float64(j.OutputBytes))
}

// Merge folds another builder into this one. Both must cover the same
// workload and have been built in the same mode (exact or sketch). In
// exact mode the per-shard samples are concatenated in merge order —
// the CDF sorts, so the result is independent of that order; in sketch
// mode the fixed-memory sketches merge exactly (stats.QuantileSketch).
// Either way, shard-built-then-merged Result() matches sequential
// observation of the same jobs. The argument is not modified, but in
// exact mode the receiver may alias the argument's sample memory
// afterwards — treat merged-from builders as frozen.
func (b *DataSizeBuilder) Merge(o *DataSizeBuilder) error {
	if b.workload != o.workload {
		return fmt.Errorf("analysis: cannot merge data-size builders of different workloads (%q vs %q)", b.workload, o.workload)
	}
	if b.sketch != o.sketch {
		return fmt.Errorf("analysis: cannot merge exact and sketch data-size builders")
	}
	if b.sketch {
		if err := b.hin.Merge(o.hin); err != nil {
			return err
		}
		if err := b.hsh.Merge(o.hsh); err != nil {
			return err
		}
		if err := b.ho.Merge(o.ho); err != nil {
			return err
		}
	} else {
		b.in = append(b.in, o.in...)
		b.sh = append(b.sh, o.sh...)
		b.out = append(b.out, o.out...)
	}
	b.n += o.n
	return nil
}

// Result returns the Figure 1 distributions; it errors on an empty
// stream, like DataSizeCDFs on an empty trace.
func (b *DataSizeBuilder) Result() (*DataSizes, error) {
	if b.n == 0 {
		return nil, errors.New("analysis: empty trace")
	}
	if b.sketch {
		return &DataSizes{Workload: b.workload, Input: b.hin, Shuffle: b.hsh, Output: b.ho}, nil
	}
	return &DataSizes{
		Workload: b.workload,
		Input:    stats.NewCDF(b.in),
		Shuffle:  stats.NewCDF(b.sh),
		Output:   stats.NewCDF(b.out),
	}, nil
}

// DataSizeCDFs computes Figure 1's exact distributions for a trace.
func DataSizeCDFs(t *trace.Trace) (*DataSizes, error) {
	b := NewDataSizeBuilder(t.Meta.Name, false)
	b.in = make([]float64, 0, t.Len())
	b.sh = make([]float64, 0, t.Len())
	b.out = make([]float64, 0, t.Len())
	for _, j := range t.Jobs {
		b.Observe(j)
	}
	return b.Result()
}

// MedianSpanAcrossWorkloads reports, for a set of per-workload Figure 1
// results, how many orders of magnitude the medians span in each dimension.
// The paper: "the median per-job input, shuffle, and output sizes differ
// by 6, 8, and 4 orders of magnitude, respectively". Zero medians
// (workloads whose median job moves no shuffle data) are excluded, as a
// log-scale plot excludes them.
func MedianSpanAcrossWorkloads(all []*DataSizes) (input, shuffle, output float64) {
	var ins, shs, outs []float64
	for _, d := range all {
		ins = append(ins, d.Input.Median())
		shs = append(shs, d.Shuffle.Median())
		outs = append(outs, d.Output.Median())
	}
	return stats.OrdersOfMagnitudeSpan(ins),
		stats.OrdersOfMagnitudeSpan(shs),
		stats.OrdersOfMagnitudeSpan(outs)
}
