// Package analysis implements the paper's measurement methodology: each
// exported function reproduces one figure or table of the study from a
// workload trace — data access patterns (§4, Figures 1–6), temporal
// patterns (§5, Figures 7–9), and computation patterns (§6, Figure 10 and
// Table 2).
package analysis

import (
	"errors"

	"repro/internal/stats"
	"repro/internal/trace"
)

// DataSizes is the Figure 1 analysis for one workload: empirical CDFs of
// per-job input, shuffle, and output bytes.
type DataSizes struct {
	Workload string
	Input    *stats.CDF
	Shuffle  *stats.CDF
	Output   *stats.CDF
}

// DataSizeCDFs computes Figure 1's distributions for a trace.
func DataSizeCDFs(t *trace.Trace) (*DataSizes, error) {
	if t.Len() == 0 {
		return nil, errors.New("analysis: empty trace")
	}
	in := make([]float64, 0, t.Len())
	sh := make([]float64, 0, t.Len())
	out := make([]float64, 0, t.Len())
	for _, j := range t.Jobs {
		in = append(in, float64(j.InputBytes))
		sh = append(sh, float64(j.ShuffleBytes))
		out = append(out, float64(j.OutputBytes))
	}
	return &DataSizes{
		Workload: t.Meta.Name,
		Input:    stats.NewCDF(in),
		Shuffle:  stats.NewCDF(sh),
		Output:   stats.NewCDF(out),
	}, nil
}

// MedianSpanAcrossWorkloads reports, for a set of per-workload Figure 1
// results, how many orders of magnitude the medians span in each dimension.
// The paper: "the median per-job input, shuffle, and output sizes differ
// by 6, 8, and 4 orders of magnitude, respectively". Zero medians
// (workloads whose median job moves no shuffle data) are excluded, as a
// log-scale plot excludes them.
func MedianSpanAcrossWorkloads(all []*DataSizes) (input, shuffle, output float64) {
	var ins, shs, outs []float64
	for _, d := range all {
		ins = append(ins, d.Input.Median())
		shs = append(shs, d.Shuffle.Median())
		outs = append(outs, d.Output.Median())
	}
	return stats.OrdersOfMagnitudeSpan(ins),
		stats.OrdersOfMagnitudeSpan(shs),
		stats.OrdersOfMagnitudeSpan(outs)
}
