package analysis

import (
	"errors"
	"sort"
	"strings"
	"unicode"

	"repro/internal/trace"
)

// NameGroup is one first-word bucket of the Figure 10 analysis.
type NameGroup struct {
	// Word is the normalized first word of the job names in the group.
	Word string
	// JobsFraction, BytesFraction, TaskTimeFraction are the group's share
	// of the workload weighted three ways, matching Figure 10's three
	// panels.
	JobsFraction     float64
	BytesFraction    float64
	TaskTimeFraction float64
}

// NameAnalysis is the Figure 10 analysis for one workload.
type NameAnalysis struct {
	Workload string
	// Groups sorted by descending JobsFraction.
	Groups []NameGroup
	// DistinctWords counts distinct first words observed.
	DistinctWords int
}

// FirstWord extracts the normalized first word of a job name the way §6.1
// describes: "we focus on the first word of job names, ignoring any
// capitalization, numbers, or other symbols".
func FirstWord(name string) string {
	var b strings.Builder
	started := false
	for _, r := range name {
		if unicode.IsLetter(r) {
			b.WriteRune(unicode.ToLower(r))
			started = true
			continue
		}
		if started {
			break
		}
		// Skip leading digits/symbols until the first letter run begins.
	}
	return b.String()
}

// JobNames computes Figure 10: first words of job names weighted by job
// count, by total I/O bytes, and by task-time. topN groups are kept; the
// remainder is aggregated into an "[others]" group, as the figure does.
func JobNames(t *trace.Trace, topN int) (*NameAnalysis, error) {
	if !t.HasNames() {
		return nil, errors.New("analysis: trace carries no job names")
	}
	if topN < 1 {
		topN = 1
	}
	type agg struct {
		jobs     float64
		bytes    float64
		taskTime float64
	}
	groups := make(map[string]*agg)
	var totJobs, totBytes, totTask float64
	for _, j := range t.Jobs {
		w := FirstWord(j.Name)
		if w == "" {
			w = "[unnamed]"
		}
		g := groups[w]
		if g == nil {
			g = &agg{}
			groups[w] = g
		}
		g.jobs++
		g.bytes += float64(j.TotalBytes())
		g.taskTime += float64(j.TotalTaskTime())
		totJobs++
		totBytes += float64(j.TotalBytes())
		totTask += float64(j.TotalTaskTime())
	}
	if totJobs == 0 {
		return nil, errors.New("analysis: no named jobs")
	}
	words := make([]string, 0, len(groups))
	for w := range groups {
		words = append(words, w)
	}
	sort.Slice(words, func(i, k int) bool {
		gi, gk := groups[words[i]], groups[words[k]]
		if gi.jobs != gk.jobs {
			return gi.jobs > gk.jobs
		}
		return words[i] < words[k]
	})
	res := &NameAnalysis{Workload: t.Meta.Name, DistinctWords: len(groups)}
	var restJobs, restBytes, restTask float64
	for i, w := range words {
		g := groups[w]
		if i < topN {
			res.Groups = append(res.Groups, NameGroup{
				Word:             w,
				JobsFraction:     g.jobs / totJobs,
				BytesFraction:    safeDiv(g.bytes, totBytes),
				TaskTimeFraction: safeDiv(g.taskTime, totTask),
			})
			continue
		}
		restJobs += g.jobs
		restBytes += g.bytes
		restTask += g.taskTime
	}
	if restJobs > 0 {
		res.Groups = append(res.Groups, NameGroup{
			Word:             "[others]",
			JobsFraction:     restJobs / totJobs,
			BytesFraction:    safeDiv(restBytes, totBytes),
			TaskTimeFraction: safeDiv(restTask, totTask),
		})
	}
	return res, nil
}

// TopKJobsFraction returns the combined job share of the k most frequent
// first words (excluding the [others] catch-all): "the top handful of
// words account for a dominant majority of jobs".
func (n *NameAnalysis) TopKJobsFraction(k int) float64 {
	var sum float64
	count := 0
	for _, g := range n.Groups {
		if g.Word == "[others]" {
			continue
		}
		sum += g.JobsFraction
		count++
		if count == k {
			break
		}
	}
	return sum
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
