package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"unicode"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// NameGroup is one first-word bucket of the Figure 10 analysis.
type NameGroup struct {
	// Word is the normalized first word of the job names in the group.
	Word string
	// JobsFraction, BytesFraction, TaskTimeFraction are the group's share
	// of the workload weighted three ways, matching Figure 10's three
	// panels.
	JobsFraction     float64
	BytesFraction    float64
	TaskTimeFraction float64
}

// NameAnalysis is the Figure 10 analysis for one workload.
type NameAnalysis struct {
	Workload string
	// Groups sorted by descending JobsFraction.
	Groups []NameGroup
	// DistinctWords counts distinct first words observed.
	DistinctWords int
}

// FirstWord extracts the normalized first word of a job name the way §6.1
// describes: "we focus on the first word of job names, ignoring any
// capitalization, numbers, or other symbols".
func FirstWord(name string) string {
	var b strings.Builder
	started := false
	for _, r := range name {
		if unicode.IsLetter(r) {
			b.WriteRune(unicode.ToLower(r))
			started = true
			continue
		}
		if started {
			break
		}
		// Skip leading digits/symbols until the first letter run begins.
	}
	return b.String()
}

// nameAgg is one first-word bucket's running totals. Jobs and bytes are
// integers and task-time is an exact sum, so bucket totals are
// order-independent and merge without drift.
type nameAgg struct {
	jobs     int64
	bytes    units.Bytes
	taskTime stats.ExactSum
}

// NamesBuilder accumulates Figure 10 incrementally. Memory is bounded by
// the distinct first-word vocabulary (a handful per workload, §6.1), not
// by job count, so the analysis streams. JobNames delegates to it.
//
// The builder is a mergeable partial aggregate: bucket totals are exact
// sums, so observing a stream in shards and Merge-ing the shard
// builders yields a Result() identical to sequential observation.
type NamesBuilder struct {
	workload string
	groups   map[string]*nameAgg
	totJobs  int64
	totBytes units.Bytes
	totTask  stats.ExactSum
	named    bool
}

// NewNamesBuilder starts a Figure 10 accumulation.
func NewNamesBuilder(workload string) *NamesBuilder {
	return &NamesBuilder{workload: workload, groups: make(map[string]*nameAgg)}
}

// Observe folds one job in. Unnamed jobs count under "[unnamed]", as
// before; whether the trace carries names at all is decided at Result.
func (b *NamesBuilder) Observe(j *trace.Job) {
	if j.Name != "" {
		b.named = true
	}
	w := FirstWord(j.Name)
	if w == "" {
		w = "[unnamed]"
	}
	g := b.groups[w]
	if g == nil {
		g = &nameAgg{}
		b.groups[w] = g
	}
	g.jobs++
	g.bytes += j.TotalBytes()
	g.taskTime.Add(float64(j.TotalTaskTime()))
	b.totJobs++
	b.totBytes += j.TotalBytes()
	b.totTask.Add(float64(j.TotalTaskTime()))
}

// Merge folds another builder's buckets into this one. Both must cover
// the same workload. The argument is not modified.
func (b *NamesBuilder) Merge(o *NamesBuilder) error {
	if b.workload != o.workload {
		return fmt.Errorf("analysis: cannot merge name analyses of different workloads (%q vs %q)", b.workload, o.workload)
	}
	for w, og := range o.groups {
		g := b.groups[w]
		if g == nil {
			g = &nameAgg{}
			b.groups[w] = g
		}
		g.jobs += og.jobs
		g.bytes += og.bytes
		g.taskTime.Merge(&og.taskTime)
	}
	b.totJobs += o.totJobs
	b.totBytes += o.totBytes
	b.totTask.Merge(&o.totTask)
	b.named = b.named || o.named
	return nil
}

// Result returns the Figure 10 analysis, erroring when the stream
// carried no job names (mirroring JobNames on a nameless trace).
func (b *NamesBuilder) Result(topN int) (*NameAnalysis, error) {
	if !b.named {
		return nil, errors.New("analysis: trace carries no job names")
	}
	if b.totJobs == 0 {
		return nil, errors.New("analysis: no named jobs")
	}
	if topN < 1 {
		topN = 1
	}
	words := make([]string, 0, len(b.groups))
	for w := range b.groups {
		words = append(words, w)
	}
	sort.Slice(words, func(i, k int) bool {
		gi, gk := b.groups[words[i]], b.groups[words[k]]
		if gi.jobs != gk.jobs {
			return gi.jobs > gk.jobs
		}
		return words[i] < words[k]
	})
	res := &NameAnalysis{Workload: b.workload, DistinctWords: len(b.groups)}
	var restJobs int64
	var restBytes units.Bytes
	var restTask stats.ExactSum
	for i, w := range words {
		g := b.groups[w]
		if i < topN {
			res.Groups = append(res.Groups, NameGroup{
				Word:             w,
				JobsFraction:     float64(g.jobs) / float64(b.totJobs),
				BytesFraction:    safeDiv(float64(g.bytes), float64(b.totBytes)),
				TaskTimeFraction: safeDiv(g.taskTime.Sum(), b.totTask.Sum()),
			})
			continue
		}
		restJobs += g.jobs
		restBytes += g.bytes
		restTask.Merge(&g.taskTime)
	}
	if restJobs > 0 {
		res.Groups = append(res.Groups, NameGroup{
			Word:             "[others]",
			JobsFraction:     float64(restJobs) / float64(b.totJobs),
			BytesFraction:    safeDiv(float64(restBytes), float64(b.totBytes)),
			TaskTimeFraction: safeDiv(restTask.Sum(), b.totTask.Sum()),
		})
	}
	return res, nil
}

// JobNames computes Figure 10: first words of job names weighted by job
// count, by total I/O bytes, and by task-time. topN groups are kept; the
// remainder is aggregated into an "[others]" group, as the figure does.
func JobNames(t *trace.Trace, topN int) (*NameAnalysis, error) {
	if !t.HasNames() {
		return nil, errors.New("analysis: trace carries no job names")
	}
	b := NewNamesBuilder(t.Meta.Name)
	for _, j := range t.Jobs {
		b.Observe(j)
	}
	return b.Result(topN)
}

// TopKJobsFraction returns the combined job share of the k most frequent
// first words (excluding the [others] catch-all): "the top handful of
// words account for a dominant majority of jobs".
func (n *NameAnalysis) TopKJobsFraction(k int) float64 {
	var sum float64
	count := 0
	for _, g := range n.Groups {
		if g.Word == "[others]" {
			continue
		}
		sum += g.JobsFraction
		count++
		if count == k {
			break
		}
	}
	return sum
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
