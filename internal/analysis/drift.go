package analysis

import (
	"errors"
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Drift quantifies how a workload changed between two trace collections —
// the §6.2 finding that "job types at Facebook changed significantly over
// one year", and §4.1's observation that from 2009 to 2010 the per-job
// input and shuffle distributions shifted right by several orders of
// magnitude while outputs shifted left ("raw and intermediate data sets
// have grown while the final computation results have become smaller").
type Drift struct {
	From, To string
	// MedianShift is log10(medianTo / medianFrom) per dimension: positive
	// means the distribution moved right (grew). Dimensions whose median
	// is zero in either trace report the shift of positive-value medians.
	InputMedianShift   float64
	ShuffleMedianShift float64
	OutputMedianShift  float64
	// KS distances between the (log-scaled, positive-support) per-job
	// distributions: how much the shapes changed, location included.
	InputKS   float64
	ShuffleKS float64
	OutputKS  float64
	// JobRateRatio is (jobs/hr in To) / (jobs/hr in From).
	JobRateRatio float64
}

// CompareEras computes drift between two traces of the same deployment at
// different times (e.g. FB-2009 vs FB-2010).
func CompareEras(from, to *trace.Trace) (*Drift, error) {
	if from.Len() == 0 || to.Len() == 0 {
		return nil, errors.New("analysis: empty trace in era comparison")
	}
	d := &Drift{From: from.Meta.Name, To: to.Meta.Name}

	dim := func(t *trace.Trace, f func(*trace.Job) float64) *stats.CDF {
		xs := make([]float64, 0, t.Len())
		for _, j := range t.Jobs {
			if v := f(j); v > 0 {
				xs = append(xs, math.Log10(v))
			}
		}
		return stats.NewCDF(xs)
	}
	shiftAndKS := func(f func(*trace.Job) float64) (shift, ks float64) {
		a := dim(from, f)
		b := dim(to, f)
		if a.Len() == 0 || b.Len() == 0 {
			return 0, 1
		}
		return b.Median() - a.Median(), stats.KSDistance(a, b)
	}
	d.InputMedianShift, d.InputKS = shiftAndKS(func(j *trace.Job) float64 { return float64(j.InputBytes) })
	d.ShuffleMedianShift, d.ShuffleKS = shiftAndKS(func(j *trace.Job) float64 { return float64(j.ShuffleBytes) })
	d.OutputMedianShift, d.OutputKS = shiftAndKS(func(j *trace.Job) float64 { return float64(j.OutputBytes) })

	fromRate := ratePerHour(from)
	toRate := ratePerHour(to)
	if fromRate > 0 {
		d.JobRateRatio = toRate / fromRate
	}
	return d, nil
}

func ratePerHour(t *trace.Trace) float64 {
	length := t.Meta.Length
	if length <= 0 {
		s, e := t.Span()
		length = e.Sub(s)
	}
	h := length.Hours()
	if h <= 0 {
		return 0
	}
	return float64(t.Len()) / h
}

// Significant reports whether any dimension's shape changed by more than
// the threshold KS distance — the re-assessment trigger the paper
// recommends ("any policy parameters need to be periodically revisited").
func (d *Drift) Significant(ksThreshold float64) bool {
	return d.InputKS > ksThreshold || d.ShuffleKS > ksThreshold || d.OutputKS > ksThreshold
}
