package analysis

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/binenc"
	"repro/internal/trace"
	"repro/internal/units"
)

func encodeJobs(t *testing.T) []*trace.Job {
	t.Helper()
	start := time.Date(2009, 5, 1, 0, 0, 0, 0, time.UTC)
	jobs := make([]*trace.Job, 0, 50)
	for i := 0; i < 50; i++ {
		name := "pipeline_daily"
		if i%3 == 0 {
			name = "AdHoc Query 7"
		}
		jobs = append(jobs, &trace.Job{
			ID:           int64(i),
			Name:         name,
			SubmitTime:   start.Add(time.Duration(i) * 7 * time.Minute),
			Duration:     time.Duration(i%11+1) * time.Minute,
			InputBytes:   units.Bytes(1 << (i % 40)),
			ShuffleBytes: units.Bytes(i * 1000),
			OutputBytes:  units.Bytes(i * 77),
			MapTime:      units.TaskSeconds(float64(i) * 1.25),
			ReduceTime:   units.TaskSeconds(float64(i) * 0.3),
			MapTasks:     i + 1,
			ReduceTasks:  i % 4,
		})
	}
	return jobs
}

func TestDataSizeBuilderEncodeRoundTrip(t *testing.T) {
	for _, sketch := range []bool{false, true} {
		b := NewDataSizeBuilder("FB-2009", sketch)
		for _, j := range encodeJobs(t) {
			b.Observe(j)
		}
		r := binenc.NewReader(b.AppendBinary(nil))
		got := ReadDataSizeBuilder(r)
		if err := r.Err(); err != nil {
			t.Fatalf("sketch=%v: %v", sketch, err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("sketch=%v: %d trailing bytes", sketch, r.Remaining())
		}
		want, err := b.Result()
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Result()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if want.Input.Quantile(q) != have.Input.Quantile(q) ||
				want.Shuffle.Quantile(q) != have.Shuffle.Quantile(q) ||
				want.Output.Quantile(q) != have.Output.Quantile(q) {
				t.Errorf("sketch=%v: quantile %g drifted", sketch, q)
			}
		}
	}
}

func TestTimeSeriesBuilderEncodeRoundTrip(t *testing.T) {
	start := time.Date(2009, 5, 1, 0, 0, 0, 0, time.UTC)
	b, err := NewTimeSeriesBuilder("FB-2009", start, 7*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range encodeJobs(t) {
		b.Observe(j)
	}
	r := binenc.NewReader(b.AppendBinary(nil))
	got := ReadTimeSeriesBuilder(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Series(), got.Series()) {
		t.Error("series drifted through encode/decode")
	}
	// The decoded builder still merges with a live one.
	live, err := NewTimeSeriesBuilder("FB-2009", start, 7*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Merge(live); err != nil {
		t.Errorf("decoded builder cannot merge: %v", err)
	}
}

func TestNamesBuilderEncodeRoundTrip(t *testing.T) {
	b := NewNamesBuilder("FB-2009")
	for _, j := range encodeJobs(t) {
		b.Observe(j)
	}
	r := binenc.NewReader(b.AppendBinary(nil))
	got, err := ReadNamesBuilder(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	want, err := b.Result(8)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Result(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, have) {
		t.Errorf("name analysis drifted:\n%+v\nvs\n%+v", want, have)
	}
}

func TestNamesBuilderEncodeDeterministic(t *testing.T) {
	// Map iteration order must not leak into the encoding.
	mk := func() []byte {
		b := NewNamesBuilder("x")
		for _, j := range encodeJobs(t) {
			b.Observe(j)
		}
		return b.AppendBinary(nil)
	}
	first := mk()
	for i := 0; i < 5; i++ {
		if !reflect.DeepEqual(first, mk()) {
			t.Fatal("encoding varies across runs")
		}
	}
}
