package analysis

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// genTrace memoizes generated traces across tests in this package — the
// analyses are read-only over them.
var traceCache = map[string]*trace.Trace{}

func genTrace(t testing.TB, name string, dur time.Duration, seed int64) *trace.Trace {
	t.Helper()
	key := name + dur.String() + string(rune(seed))
	if tr, ok := traceCache[key]; ok {
		return tr
	}
	p, err := profile.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	traceCache[key] = tr
	return tr
}

func TestDataSizeCDFs(t *testing.T) {
	tr := genTrace(t, "CC-b", 72*time.Hour, 1)
	ds, err := DataSizeCDFs(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Input.Len() != tr.Len() || ds.Shuffle.Len() != tr.Len() || ds.Output.Len() != tr.Len() {
		t.Error("CDF sample sizes should equal job count")
	}
	// CC-b is dominated by tiny jobs (centroid 4.6 KB input): median input
	// must be in the KB range, far below the mean.
	med := ds.Input.Median()
	if med > 1e6 {
		t.Errorf("CC-b median input = %v bytes, want KB-scale", med)
	}
	if _, err := DataSizeCDFs(trace.New(trace.Meta{Name: "e"})); err == nil {
		t.Error("empty trace should error")
	}
}

func TestMedianSpanAcrossWorkloads(t *testing.T) {
	// Generate the two extremes: CC-b (KB-scale medians) and CC-c
	// (GB-scale medians); the cross-workload span should be several orders
	// of magnitude (paper: 6 for input).
	var all []*DataSizes
	for _, name := range []string{"CC-b", "CC-c", "CC-e", "FB-2010"} {
		ds, err := DataSizeCDFs(genTrace(t, name, 72*time.Hour, 2))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ds)
	}
	in, _, out := MedianSpanAcrossWorkloads(all)
	if in < 4 {
		t.Errorf("median input span = %v orders, want >= 4 (paper: 6)", in)
	}
	if out < 1 {
		t.Errorf("median output span = %v orders, want >= 1 (paper: 4)", out)
	}
}

func TestInputAccessFrequencyZipf(t *testing.T) {
	tr := genTrace(t, "CC-c", 14*24*time.Hour, 3)
	af, err := InputAccessFrequency(tr)
	if err != nil {
		t.Fatal(err)
	}
	if af.DistinctFiles < 100 {
		t.Fatalf("only %d distinct files", af.DistinctFiles)
	}
	if af.Fit.Ranks < 10 {
		t.Fatalf("Zipf fit covered only %d ranks", af.Fit.Ranks)
	}
	// Paper: slope ≈ 5/6 ≈ 0.83; accept the neighborhood since the fit is
	// over a finite synthetic population.
	if af.Fit.Alpha < 0.4 || af.Fit.Alpha > 1.4 {
		t.Errorf("Zipf alpha = %v, want ~0.83 (paper: 5/6)", af.Fit.Alpha)
	}
	// "approximately straight lines": strong log-log linearity.
	if af.Fit.R2 < 0.8 {
		t.Errorf("log-log R2 = %v, want > 0.8", af.Fit.R2)
	}
	// Frequencies sorted descending.
	for i := 1; i < len(af.Frequencies); i++ {
		if af.Frequencies[i] > af.Frequencies[i-1] {
			t.Fatal("frequencies not sorted")
		}
	}
}

func TestOutputAccessFrequency(t *testing.T) {
	tr := genTrace(t, "CC-d", 7*24*time.Hour, 4)
	af, err := OutputAccessFrequency(tr)
	if err != nil {
		t.Fatal(err)
	}
	if af.DistinctFiles < 10 {
		t.Errorf("only %d distinct output files", af.DistinctFiles)
	}
}

func TestAccessFrequencyNoPathsErrors(t *testing.T) {
	tr := genTrace(t, "FB-2009", 24*time.Hour, 5) // no paths in FB-2009
	if _, err := InputAccessFrequency(tr); err == nil {
		t.Error("FB-2009 should have no path data")
	}
}

func TestInputSizeAccessEightyRule(t *testing.T) {
	tr := genTrace(t, "CC-c", 14*24*time.Hour, 6)
	sa, err := InputSizeAccess(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.2: 80% of jobs go to less than 10% of stored bytes
	// (80-1 to 80-8 rules).
	rule := sa.EightyRule()
	if rule > 25 {
		t.Errorf("80-N rule: N = %v%%, want small (paper: 1-8%%)", rule)
	}
	// 90% of jobs access files smaller than a few GB.
	q90 := sa.JobsCDF.Quantile(0.9)
	if q90 > 100e9 {
		t.Errorf("90th pct accessed file size = %v, want < ~tens of GB", q90)
	}
	// Bytes CDF monotone, ends at 1.
	last := sa.BytesCDF[len(sa.BytesCDF)-1]
	if last.Y < 0.999 {
		t.Errorf("bytes CDF ends at %v, want 1", last.Y)
	}
	for i := 1; i < len(sa.BytesCDF); i++ {
		if sa.BytesCDF[i].Y < sa.BytesCDF[i-1].Y || sa.BytesCDF[i].X <= sa.BytesCDF[i-1].X {
			t.Fatal("bytes CDF not monotone")
		}
	}
	if sa.BytesFractionAt(0) != 0 {
		t.Error("BytesFractionAt(0) should be 0")
	}
}

func TestOutputSizeAccess(t *testing.T) {
	tr := genTrace(t, "CC-b", 7*24*time.Hour, 7)
	sa, err := OutputSizeAccess(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sa.DistinctFiles == 0 || sa.TotalStored == 0 {
		t.Error("expected output files")
	}
	fb := genTrace(t, "FB-2010", 4*time.Hour, 7)
	if _, err := OutputSizeAccess(fb); err == nil {
		t.Error("FB-2010 has no output paths; should error")
	}
}

func TestReaccessFractions(t *testing.T) {
	for _, c := range []struct {
		name    string
		minFrac float64
	}{
		{"CC-c", 0.5}, {"CC-d", 0.5}, {"CC-e", 0.5}, {"CC-b", 0.1},
	} {
		tr := genTrace(t, c.name, 7*24*time.Hour, 8)
		rf, err := Reaccess(tr)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		total := rf.InputReaccess + rf.OutputReaccess
		if total < c.minFrac {
			t.Errorf("%s: total re-access fraction %v, want >= %v", c.name, total, c.minFrac)
		}
		if total > 0.95 {
			t.Errorf("%s: implausible re-access fraction %v", c.name, total)
		}
		if !rf.OutputObservable {
			t.Errorf("%s should carry output paths", c.name)
		}
	}
	// FB-2010: input paths only — output reuse not observable.
	fb := genTrace(t, "FB-2010", 4*time.Hour, 8)
	rf, err := Reaccess(fb)
	if err != nil {
		t.Fatal(err)
	}
	if rf.OutputObservable {
		t.Error("FB-2010 output paths should be unobservable")
	}
	if rf.OutputReaccess != 0 {
		t.Error("FB-2010 output re-access should be 0 (unobservable)")
	}
}

func TestIntervalsTemporalLocality(t *testing.T) {
	tr := genTrace(t, "CC-e", 7*24*time.Hour, 9)
	iv, err := Intervals(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "75% of the re-accesses take place within 6 hours". Check a
	// relaxed version of the shape: a clear majority within 6 hours.
	frac := iv.FractionWithin(6 * time.Hour)
	if frac < 0.5 {
		t.Errorf("re-accesses within 6h = %v, want majority (paper: 0.75)", frac)
	}
	if iv.OutputInput == nil {
		t.Error("CC-e should have output->input intervals")
	}
	// No-path trace errors.
	fb09 := genTrace(t, "FB-2009", 24*time.Hour, 9)
	if _, err := Intervals(fb09); err == nil {
		t.Error("FB-2009 should error (no paths)")
	}
}

func TestBinHourlyAndWeek(t *testing.T) {
	tr := genTrace(t, "CC-b", 9*24*time.Hour, 10)
	ts, err := BinHourly(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Hours() < 9*24 {
		t.Fatalf("hours = %d, want >= 216", ts.Hours())
	}
	var jobsSum float64
	for _, v := range ts.Jobs {
		jobsSum += v
	}
	if int(jobsSum) != tr.Len() {
		t.Errorf("binned jobs = %v, trace has %d", jobsSum, tr.Len())
	}
	week, err := ts.Week(0)
	if err != nil {
		t.Fatal(err)
	}
	if week.Hours() != 7*24 {
		t.Errorf("week hours = %d", week.Hours())
	}
	if _, err := ts.Week(5); err == nil {
		t.Error("week beyond trace should error")
	}
	if _, err := ts.Week(-1); err == nil {
		t.Error("negative week should error")
	}
	if _, err := BinHourly(trace.New(trace.Meta{Name: "e"})); err == nil {
		t.Error("empty trace should error")
	}
}

func TestBurstinessOrdering(t *testing.T) {
	// FB-2010 multiplexes many organizations: the paper reports its
	// peak-to-median fell to 9:1 vs FB-2009's 31:1, with CC workloads
	// ranging up to 260:1. Check the ordering FB-2010 < CC-a.
	fb10, err := BinHourly(genTrace(t, "FB-2010", 14*24*time.Hour, 11))
	if err != nil {
		t.Fatal(err)
	}
	cca, err := BinHourly(genTrace(t, "CC-a", 14*24*time.Hour, 11))
	if err != nil {
		t.Fatal(err)
	}
	bFB, err := fb10.BurstinessOf()
	if err != nil {
		t.Fatal(err)
	}
	bCC, err := cca.BurstinessOf()
	if err != nil {
		t.Fatal(err)
	}
	if bFB.PeakToMedian >= bCC.PeakToMedian {
		t.Errorf("FB-2010 peak/median %v should be far below CC-a %v",
			bFB.PeakToMedian, bCC.PeakToMedian)
	}
	if bFB.PeakToMedian < 2 || bFB.PeakToMedian > 100 {
		t.Errorf("FB-2010 peak/median = %v, want O(10)", bFB.PeakToMedian)
	}
	if bCC.PeakToMedian < 20 {
		t.Errorf("CC-a peak/median = %v, want large (paper: up to 260)", bCC.PeakToMedian)
	}
}

func TestCorrelationsShape(t *testing.T) {
	// Figure 9's key finding: bytes <-> task-time correlation is by far the
	// strongest of the three pairs.
	ts, err := BinHourly(genTrace(t, "FB-2010", 14*24*time.Hour, 12))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ts.Correlate()
	if err != nil {
		t.Fatal(err)
	}
	if c.BytesTaskSeconds <= c.JobsBytes || c.BytesTaskSeconds <= c.JobsTaskSeconds {
		t.Errorf("bytes-tasktime corr %v should dominate jobs-bytes %v and jobs-tasktime %v",
			c.BytesTaskSeconds, c.JobsBytes, c.JobsTaskSeconds)
	}
	if c.BytesTaskSeconds < 0.3 {
		t.Errorf("bytes-tasktime corr = %v, want strong (paper avg: 0.62)", c.BytesTaskSeconds)
	}
}

func TestDiurnalStrengthsComputed(t *testing.T) {
	ts, err := BinHourly(genTrace(t, "FB-2010", 14*24*time.Hour, 13))
	if err != nil {
		t.Fatal(err)
	}
	jobs, bytes, tasks, err := ts.DiurnalStrengths()
	if err != nil {
		t.Fatal(err)
	}
	if jobs <= 0 || bytes <= 0 || tasks <= 0 {
		t.Error("diurnal strengths should be positive")
	}
	// FB-2010 has the strongest configured diurnal; its job-submission
	// series should show clear daily periodicity.
	if jobs < 1.5 {
		t.Errorf("FB-2010 diurnal strength = %v, want visible (> 1.5)", jobs)
	}
}

func TestFirstWord(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"INSERT overwrite table x(Stage-1)", "insert"},
		{"PigLatin:job_000123-4", "piglatin"},
		{"oozie:launcher:T=map-reduce:W=wf-00001", "oozie"},
		{"ad_hoc_query 12", "ad"},
		{"123start now", "start"},
		{"", ""},
		{"...", ""},
		{"Ad4Clicks", "ad"},
	}
	for _, c := range cases {
		if got := FirstWord(c.in); got != c.want {
			t.Errorf("FirstWord(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestJobNames(t *testing.T) {
	tr := genTrace(t, "FB-2009", 72*time.Hour, 14)
	na, err := JobNames(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(na.Groups) == 0 {
		t.Fatal("no name groups")
	}
	// "the top handful of words account for a dominant majority of jobs"
	if frac := na.TopKJobsFraction(5); frac < 0.6 {
		t.Errorf("top-5 words cover %v of jobs, want dominant majority", frac)
	}
	// FB-2009: 'ad' should be the most frequent first word (~44%).
	if na.Groups[0].Word != "ad" {
		t.Errorf("top word = %q, want ad", na.Groups[0].Word)
	}
	if na.Groups[0].JobsFraction < 0.3 || na.Groups[0].JobsFraction > 0.6 {
		t.Errorf("ad fraction = %v, want ~0.44", na.Groups[0].JobsFraction)
	}
	// Fractions sum to ~1 with [others].
	var sum float64
	for _, g := range na.Groups {
		sum += g.JobsFraction
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("jobs fractions sum to %v", sum)
	}
	// Data-centric words dominate the bytes panel: 'from' should carry a
	// far higher bytes share than jobs share (paper: 27% of I/O from 'from'
	// jobs).
	var fromGroup *NameGroup
	for i := range na.Groups {
		if na.Groups[i].Word == "from" {
			fromGroup = &na.Groups[i]
		}
	}
	if fromGroup == nil {
		t.Fatal("no 'from' group in FB-2009 names")
	}
	if fromGroup.BytesFraction < fromGroup.JobsFraction {
		t.Errorf("'from' bytes share %v should exceed jobs share %v",
			fromGroup.BytesFraction, fromGroup.JobsFraction)
	}
	// FB-2010 has no names.
	if _, err := JobNames(genTrace(t, "FB-2010", 4*time.Hour, 14), 5); err == nil {
		t.Error("FB-2010 should error (no names)")
	}
}

func TestClusterJobsRecoversStructure(t *testing.T) {
	tr := genTrace(t, "CC-a", 14*24*time.Hour, 15)
	jc, err := ClusterJobs(tr, ClusterConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if jc.K < 2 {
		t.Errorf("k = %d, want >= 2 for CC-a's 4-cluster mixture", jc.K)
	}
	// Small jobs dominate (paper: >90% in every workload).
	if jc.SmallJobFraction < 0.85 {
		t.Errorf("small-job fraction = %v, want > 0.85", jc.SmallJobFraction)
	}
	if jc.Types[0].Label != "Small jobs" {
		t.Errorf("dominant cluster label = %q, want Small jobs", jc.Types[0].Label)
	}
	// Counts should roughly sum to the trace size.
	total := 0
	for _, jt := range jc.Types {
		total += jt.Count
	}
	if total < tr.Len()*9/10 || total > tr.Len()*11/10 {
		t.Errorf("cluster counts sum to %d, trace has %d", total, tr.Len())
	}
}

func TestClusterJobsSampling(t *testing.T) {
	tr := genTrace(t, "CC-b", 7*24*time.Hour, 16)
	jc, err := ClusterJobs(tr, ClusterConfig{Seed: 2, MaxJobs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, jt := range jc.Types {
		total += jt.Count
	}
	// Counts are rescaled to the full trace.
	if total < tr.Len()*8/10 || total > tr.Len()*12/10 {
		t.Errorf("rescaled counts sum to %d, trace has %d", total, tr.Len())
	}
}

func TestClusterJobsErrors(t *testing.T) {
	tr := trace.New(trace.Meta{Name: "x"})
	if _, err := ClusterJobs(tr, ClusterConfig{}); err == nil {
		t.Error("empty trace should error")
	}
}

func TestLabelJobType(t *testing.T) {
	cases := []struct {
		jt   JobType
		want string
	}{
		{JobType{Input: 50 * units.MB, Duration: 30 * time.Second}, "Small jobs"},
		{JobType{Input: units.Bytes(1.2e12), Output: 27 * units.GB, Duration: 2 * time.Hour, MapTime: 400000}, "Map only, huge"},
		{JobType{Input: 50 * units.GB, Output: 60 * units.GB, Duration: 8 * time.Hour, MapTime: 60000}, "Map only transform, 8 hrs"},
		{JobType{Input: 3 * units.TB, Output: 200, Duration: 5 * time.Minute, MapTime: 137077}, "Map only summary, 5 min"},
		{JobType{Input: 633 * units.GB, Shuffle: units.Bytes(2.9e12), Output: 332 * units.GB, Duration: 11 * time.Minute, MapTime: 1, Reduce: 1}, "Expand and aggregate"},
		{JobType{Input: 4700 * units.GB, Shuffle: 374 * units.MB, Output: 24 * units.MB, Duration: 9 * time.Minute, MapTime: 1, Reduce: 1}, "Aggregate, 9 min"},
		{JobType{Input: 166 * units.GB, Shuffle: 180 * units.GB, Output: 118 * units.GB, Duration: 31 * time.Minute, MapTime: 1, Reduce: 1}, "Transform, 31 min"},
		{JobType{Input: 273 * units.GB, Shuffle: 185 * units.GB, Output: 21 * units.MB, Duration: 4 * time.Hour, MapTime: 1, Reduce: 1}, "Transform and aggregate"},
	}
	for _, c := range cases {
		if got := labelJobType(c.jt); got != c.want {
			t.Errorf("labelJobType(%+v) = %q, want %q", c.jt, got, c.want)
		}
	}
}

func TestCompareMixturesIdentity(t *testing.T) {
	tr := genTrace(t, "CC-a", 7*24*time.Hour, 17)
	jc, err := ClusterJobs(tr, ClusterConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := CompareMixtures(jc, jc); d != 0 {
		t.Errorf("self-distance = %v, want 0", d)
	}
}
