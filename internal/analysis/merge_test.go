package analysis

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

var mergeStart = time.Date(2009, 5, 1, 0, 0, 0, 0, time.UTC)

// mergeJob builds one job at minute m with the given sizes and task
// seconds; duration controls how far the execution window spreads.
func mergeJob(id int64, m int, in, sh, out units.Bytes, task float64, dur time.Duration) *trace.Job {
	return &trace.Job{
		ID:           id,
		Name:         []string{"ad hoc", "insert", "Metrics42", "ETL-load"}[id%4],
		SubmitTime:   mergeStart.Add(time.Duration(m) * time.Minute),
		Duration:     dur,
		InputBytes:   in,
		ShuffleBytes: sh,
		OutputBytes:  out,
		MapTime:      units.TaskSeconds(task * 0.7),
		ReduceTime:   units.TaskSeconds(task * 0.3),
	}
}

// randomJobs generates n jobs over `length` with irregular fractional
// task-times — the values where naive float accumulation drifts.
func randomJobs(n int, length time.Duration, seed int64) []*trace.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]*trace.Job, n)
	minutes := int(length.Minutes())
	for i := range jobs {
		m := i * minutes / n
		task := math.Pow(10, rng.Float64()*6) / 3.0
		dur := time.Duration(1+rng.Intn(5*3600)) * time.Second
		jobs[i] = mergeJob(int64(i), m,
			units.Bytes(rng.Int63n(1e12)), units.Bytes(rng.Int63n(1e9)), units.Bytes(rng.Int63n(1e10)),
			task, dur)
	}
	return jobs
}

// buildSeries observes jobs[lo:hi] into a fresh TimeSeriesBuilder.
func buildSeries(t *testing.T, jobs []*trace.Job, lo, hi int, length time.Duration) *TimeSeriesBuilder {
	t.Helper()
	b, err := NewTimeSeriesBuilder("w", mergeStart, length)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs[lo:hi] {
		b.Observe(j)
	}
	return b
}

func assertSeriesEqual(t *testing.T, name string, want, got *TimeSeries) {
	t.Helper()
	for dim, pair := range map[string][2][]float64{
		"jobs":   {want.Jobs, got.Jobs},
		"bytes":  {want.Bytes, got.Bytes},
		"task":   {want.TaskSeconds, got.TaskSeconds},
		"spread": {want.TaskSecondsSpread, got.TaskSecondsSpread},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: %s length %d != %d", name, dim, len(pair[1]), len(pair[0]))
		}
		for h := range pair[0] {
			if math.Float64bits(pair[0][h]) != math.Float64bits(pair[1][h]) {
				t.Fatalf("%s: %s[%d]: merged %v != sequential %v", name, dim, h, pair[1][h], pair[0][h])
			}
		}
	}
}

// TestTimeSeriesMergeBoundaryHour is the shard-boundary regression: a
// shard split in the middle of an hour must neither double-count nor
// drop that hour. Both shards contribute jobs (and execution-spread
// task-time from a long job in the earlier shard) to the same bins, and
// the merged series must be bit-identical to the sequential one.
func TestTimeSeriesMergeBoundaryHour(t *testing.T) {
	length := 4 * time.Hour
	jobs := []*trace.Job{
		// Hour 0, shard 1 only.
		mergeJob(0, 5, 100, 10, 1, 1000.5, 10*time.Minute),
		// Hour 1 straddles the shard boundary: jobs 1-2 land in shard 1,
		// job 3 in shard 2, all binned into hour 1.
		mergeJob(1, 70, 200, 20, 2, 81.25, 5*time.Minute),
		mergeJob(2, 80, 300, 30, 3, 1.0/3.0, 2*time.Minute),
		// Long job in shard 1 whose execution window spreads across the
		// boundary into hours 1-3.
		mergeJob(3, 95, 400, 40, 4, 7777.75, 150*time.Minute),
		mergeJob(4, 110, 500, 50, 5, 12.5, time.Minute),
		// Hours 2-3, shard 2 only.
		mergeJob(5, 130, 600, 60, 6, 999.125, 30*time.Minute),
		mergeJob(6, 200, 700, 70, 7, 1e6/7.0, time.Hour),
	}
	for split := 1; split < len(jobs); split++ {
		seq := buildSeries(t, jobs, 0, len(jobs), length)
		a := buildSeries(t, jobs, 0, split, length)
		b := buildSeries(t, jobs, split, len(jobs), length)
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		assertSeriesEqual(t, "boundary", seq.Series(), a.Series())
	}

	// Totals conserved: the merged spread series carries exactly the sum
	// of all task-time, once.
	var wantTotal float64
	for _, j := range jobs {
		wantTotal += float64(j.TotalTaskTime())
	}
	merged := buildSeries(t, jobs, 0, 3, length)
	rest := buildSeries(t, jobs, 3, len(jobs), length)
	if err := merged.Merge(rest); err != nil {
		t.Fatal(err)
	}
	var gotTotal float64
	for _, v := range merged.Series().TaskSecondsSpread {
		gotTotal += v
	}
	if math.Abs(gotTotal-wantTotal) > 1e-6*wantTotal {
		t.Fatalf("spread total %v after merge, want %v (double-counted or dropped at the boundary)", gotTotal, wantTotal)
	}
}

// TestTimeSeriesMergeRandomSharding: on an irregular random workload,
// any contiguous sharding merged in shard order reproduces the
// sequential series bit-for-bit.
func TestTimeSeriesMergeRandomSharding(t *testing.T) {
	length := 26 * time.Hour
	jobs := randomJobs(500, length, 11)
	seq := buildSeries(t, jobs, 0, len(jobs), length).Series()
	for _, k := range []int{2, 3, 7, 16} {
		var merged *TimeSeriesBuilder
		for i := 0; i < k; i++ {
			lo, hi := i*len(jobs)/k, (i+1)*len(jobs)/k
			shard := buildSeries(t, jobs, lo, hi, length)
			if merged == nil {
				merged = shard
				continue
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatal(err)
			}
		}
		assertSeriesEqual(t, "random", seq, merged.Series())
	}
}

// TestTimeSeriesMergeMismatch: builders over different origins or hour
// counts refuse to merge.
func TestTimeSeriesMergeMismatch(t *testing.T) {
	a, err := NewTimeSeriesBuilder("w", mergeStart, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTimeSeriesBuilder("w", mergeStart, 9*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging series of different lengths did not error")
	}
	c, err := NewTimeSeriesBuilder("w", mergeStart.Add(time.Hour), 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Fatal("merging series of different origins did not error")
	}
}

// TestDataSizeMergeMatchesSequential covers both exact and sketch modes.
func TestDataSizeMergeMatchesSequential(t *testing.T) {
	jobs := randomJobs(400, 26*time.Hour, 23)
	for _, sketch := range []bool{false, true} {
		seqB := NewDataSizeBuilder("w", sketch)
		for _, j := range jobs {
			seqB.Observe(j)
		}
		seq, err := seqB.Result()
		if err != nil {
			t.Fatal(err)
		}
		merged := NewDataSizeBuilder("w", sketch)
		for _, k := range []int{0, 1, 2} {
			shard := NewDataSizeBuilder("w", sketch)
			for _, j := range jobs[k*len(jobs)/3 : (k+1)*len(jobs)/3] {
				shard.Observe(j)
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatal(err)
			}
		}
		got, err := merged.Result()
		if err != nil {
			t.Fatal(err)
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			for dim, pair := range map[string][2]float64{
				"input":   {seq.Input.Quantile(q), got.Input.Quantile(q)},
				"shuffle": {seq.Shuffle.Quantile(q), got.Shuffle.Quantile(q)},
				"output":  {seq.Output.Quantile(q), got.Output.Quantile(q)},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("sketch=%v %s Quantile(%.2f): merged %v != sequential %v", sketch, dim, q, pair[1], pair[0])
				}
			}
		}
	}

	// Mode and workload mismatches refuse.
	if err := NewDataSizeBuilder("w", false).Merge(NewDataSizeBuilder("w", true)); err == nil {
		t.Fatal("merging exact with sketch builder did not error")
	}
	if err := NewDataSizeBuilder("a", false).Merge(NewDataSizeBuilder("b", false)); err == nil {
		t.Fatal("merging different workloads did not error")
	}
}

// TestNamesMergeMatchesSequential: merged name buckets reproduce the
// sequential Figure 10 exactly, including the named-trace flag and the
// [others] aggregation.
func TestNamesMergeMatchesSequential(t *testing.T) {
	jobs := randomJobs(300, 26*time.Hour, 31)
	seqB := NewNamesBuilder("w")
	for _, j := range jobs {
		seqB.Observe(j)
	}
	seq, err := seqB.Result(3)
	if err != nil {
		t.Fatal(err)
	}
	merged := NewNamesBuilder("w")
	for k := 0; k < 4; k++ {
		shard := NewNamesBuilder("w")
		for _, j := range jobs[k*len(jobs)/4 : (k+1)*len(jobs)/4] {
			shard.Observe(j)
		}
		if err := merged.Merge(shard); err != nil {
			t.Fatal(err)
		}
	}
	got, err := merged.Result(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, got) {
		t.Fatalf("merged name analysis differs:\nsequential %+v\nmerged     %+v", seq, got)
	}

	// A shard with only unnamed jobs must not clear the named flag.
	unnamed := NewNamesBuilder("w")
	unnamed.Observe(&trace.Job{ID: 1, SubmitTime: mergeStart})
	if err := merged.Merge(unnamed); err != nil {
		t.Fatal(err)
	}
	if _, err := merged.Result(3); err != nil {
		t.Fatalf("named trace turned nameless after merging an unnamed shard: %v", err)
	}
	if err := merged.Merge(NewNamesBuilder("other")); err == nil {
		t.Fatal("merging different workloads did not error")
	}
}
