package analysis

import (
	"math"
	"testing"
	"time"
)

func TestStandardClassifier(t *testing.T) {
	cases := map[string]string{
		"insert": "Hive", "select": "Hive", "from": "Hive",
		"piglatin": "Pig", "oozie": "Oozie",
		"etl": "", "ad": "", "": "",
	}
	for in, want := range cases {
		if got := StandardClassifier(in); got != want {
			t.Errorf("StandardClassifier(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFrameworksOnGeneratedWorkloads(t *testing.T) {
	// §8.4: query-like framework load is "up to 80% and at least 20%";
	// §6.1: two frameworks account for a dominant majority of jobs.
	for _, name := range []string{"CC-a", "CC-b", "CC-c", "CC-d", "CC-e", "FB-2009"} {
		tr := genTrace(t, name, 7*24*time.Hour, 61)
		fa, err := Frameworks(tr, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fa.TopTwoJobsShare() < 0.45 {
			t.Errorf("%s: top-2 frameworks cover %.2f of jobs, want a majority-ish share",
				name, fa.TopTwoJobsShare())
		}
		load := fa.QueryFrameworkLoad()
		if load < 0.10 || load > 0.95 {
			t.Errorf("%s: query-framework load %.2f outside the paper's 0.2-0.8 neighborhood",
				name, load)
		}
		// Fractions sum to 1 within rounding.
		var jobs float64
		for _, s := range fa.Shares {
			jobs += s.JobsFraction
			if s.JobsFraction < 0 || s.BytesFraction < 0 || s.TaskTimeFraction < 0 {
				t.Fatalf("%s: negative share %+v", name, s)
			}
		}
		if math.Abs(jobs-1) > 1e-9 {
			t.Errorf("%s: job shares sum to %v", name, jobs)
		}
	}
}

func TestFrameworksErrors(t *testing.T) {
	tr := genTrace(t, "FB-2010", 4*time.Hour, 61) // no names
	if _, err := Frameworks(tr, nil); err == nil {
		t.Error("nameless trace should error")
	}
}

func TestFrameworksCustomClassifier(t *testing.T) {
	tr := genTrace(t, "CC-b", 24*time.Hour, 61)
	everythingCustom := func(string) string { return "X" }
	fa, err := Frameworks(tr, everythingCustom)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa.Shares) != 1 || fa.Shares[0].Framework != "X" {
		t.Errorf("custom classifier shares = %+v", fa.Shares)
	}
	if fa.Shares[0].JobsFraction != 1 {
		t.Errorf("single framework should hold all jobs, got %v", fa.Shares[0].JobsFraction)
	}
	// Query load counts everything not named Native.
	if fa.QueryFrameworkLoad() != fa.Shares[0].TaskTimeFraction {
		t.Error("query load should include the custom framework")
	}
}
