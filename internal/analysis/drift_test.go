package analysis

import (
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

func eraTrace(name string, inputScale, outputScale float64, n int) *trace.Trace {
	start := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	tr := trace.New(trace.Meta{Name: name, Machines: 100, Start: start, Length: 24 * time.Hour})
	for i := 0; i < n; i++ {
		base := float64(1+i%100) * 1e6
		tr.Add(&trace.Job{
			ID:           int64(i + 1),
			SubmitTime:   start.Add(time.Duration(i) * time.Minute / 2),
			Duration:     time.Minute,
			InputBytes:   units.Bytes(base * inputScale),
			ShuffleBytes: units.Bytes(base * inputScale / 10),
			OutputBytes:  units.Bytes(base * outputScale),
			MapTasks:     1,
			MapTime:      30,
		})
	}
	return tr
}

func TestCompareErasShift(t *testing.T) {
	// 2010-era inputs 1000x larger, outputs 10x smaller — the §4.1
	// Facebook evolution in miniature.
	from := eraTrace("era-2009", 1, 1, 500)
	to := eraTrace("era-2010", 1000, 0.1, 1000)
	d, err := CompareEras(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if d.InputMedianShift < 2.5 || d.InputMedianShift > 3.5 {
		t.Errorf("input shift = %v, want ~3 (1000x)", d.InputMedianShift)
	}
	if d.OutputMedianShift > -0.5 || d.OutputMedianShift < -1.5 {
		t.Errorf("output shift = %v, want ~-1 (10x smaller)", d.OutputMedianShift)
	}
	if !d.Significant(0.2) {
		t.Error("a 1000x shift must register as significant")
	}
	if d.JobRateRatio < 1.8 || d.JobRateRatio > 2.2 {
		t.Errorf("job rate ratio = %v, want ~2", d.JobRateRatio)
	}
}

func TestCompareErasIdentical(t *testing.T) {
	a := eraTrace("same", 1, 1, 400)
	d, err := CompareEras(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.InputKS != 0 || d.OutputKS != 0 || d.InputMedianShift != 0 {
		t.Errorf("self-comparison drift = %+v, want zeros", d)
	}
	if d.Significant(0.05) {
		t.Error("identical traces must not be significant drift")
	}
	if d.JobRateRatio != 1 {
		t.Errorf("rate ratio = %v, want 1", d.JobRateRatio)
	}
}

func TestCompareErasErrors(t *testing.T) {
	a := eraTrace("a", 1, 1, 10)
	empty := trace.New(trace.Meta{Name: "e", Start: a.Meta.Start, Length: time.Hour})
	if _, err := CompareEras(a, empty); err == nil {
		t.Error("empty era should error")
	}
	if _, err := CompareEras(empty, a); err == nil {
		t.Error("empty era should error")
	}
}

func TestCompareErasOnGeneratedFacebook(t *testing.T) {
	// The calibrated FB profiles must reproduce the published direction of
	// drift: inputs grew by orders of magnitude, outputs shrank.
	fb09 := genTrace(t, "FB-2009", 72*time.Hour, 41)
	fb10 := genTrace(t, "FB-2010", 72*time.Hour, 41)
	d, err := CompareEras(fb09, fb10)
	if err != nil {
		t.Fatal(err)
	}
	if d.InputMedianShift < 1 {
		t.Errorf("FB input shift = %v orders, want > 1 (paper: several)", d.InputMedianShift)
	}
	if d.OutputMedianShift > -0.5 {
		t.Errorf("FB output shift = %v, want < -0.5 (outputs shrank)", d.OutputMedianShift)
	}
	if !d.Significant(0.2) {
		t.Error("the 2009->2010 evolution must be significant")
	}
	if d.JobRateRatio < 2 {
		t.Errorf("rate ratio = %v, want > 2 (258 -> 1083 jobs/hr)", d.JobRateRatio)
	}
}
