package analysis

import (
	"errors"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// AccessFrequency is the Figure 2 analysis: file access counts ranked by
// descending frequency, with the fitted Zipf exponent. The paper finds
// "approximately straight lines" in log-log space with slope parameters
// "approximately 5/6 across workloads and for both inputs and outputs".
type AccessFrequency struct {
	Workload string
	// Frequencies[r] is the access count of the rank-(r+1) file.
	Frequencies []uint64
	// Fit is the log-log regression over the skewed head of the
	// distribution (files accessed at least twice): the once-accessed
	// plateau carries no slope information.
	Fit stats.ZipfFit
	// DistinctFiles counts files observed.
	DistinctFiles int
	// TotalAccesses counts accesses observed.
	TotalAccesses int
}

// InputAccessFrequency computes Figure 2 (top) over job input paths.
func InputAccessFrequency(t *trace.Trace) (*AccessFrequency, error) {
	return accessFrequency(t, func(j *trace.Job) string { return j.InputPath })
}

// OutputAccessFrequency computes Figure 2 (bottom) over job output paths.
func OutputAccessFrequency(t *trace.Trace) (*AccessFrequency, error) {
	return accessFrequency(t, func(j *trace.Job) string { return j.OutputPath })
}

func accessFrequency(t *trace.Trace, path func(*trace.Job) string) (*AccessFrequency, error) {
	counts := make(map[string]uint64)
	total := 0
	for _, j := range t.Jobs {
		p := path(j)
		if p == "" {
			continue
		}
		counts[p]++
		total++
	}
	if len(counts) < 2 {
		return nil, errors.New("analysis: trace carries no usable path data")
	}
	freqs := make([]uint64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Slice(freqs, func(i, k int) bool { return freqs[i] > freqs[k] })

	// Fit over the head: ranks with frequency >= 2. The long plateau of
	// once-accessed files flattens a naive full-range fit; the paper's
	// log-log lines likewise derive their slope from the skewed head.
	head := freqs
	for i, f := range freqs {
		if f < 2 {
			head = freqs[:i]
			break
		}
	}
	fit, err := fitZipfLogSpaced(head)
	if err != nil {
		return nil, err
	}
	return &AccessFrequency{
		Workload:      t.Meta.Name,
		Frequencies:   freqs,
		Fit:           fit,
		DistinctFiles: len(counts),
		TotalAccesses: total,
	}, nil
}

// fitZipfLogSpaced estimates the log-log slope the way the paper's plotted
// lines convey it: ranks are sampled at log-spaced positions (a fixed
// number of points per decade) before the least-squares fit, so every
// decade of rank carries equal weight. A plain fit over all ranks would be
// dominated by the thousands of near-tail points and systematically
// under-estimate the visual slope.
func fitZipfLogSpaced(sortedFreqs []uint64) (stats.ZipfFit, error) {
	n := len(sortedFreqs)
	if n < 2 {
		return stats.ZipfFit{}, nil
	}
	const perDecade = 24
	var logRank, logFreq []float64
	seen := -1
	for e := 0.0; ; e += 1.0 / perDecade {
		idx := int(math.Pow(10, e)) - 1
		if idx >= n {
			break
		}
		if idx == seen {
			continue
		}
		seen = idx
		logRank = append(logRank, math.Log10(float64(idx+1)))
		logFreq = append(logFreq, math.Log10(float64(sortedFreqs[idx])))
	}
	if len(logRank) < 2 {
		return stats.ZipfFit{}, nil
	}
	fit, err := stats.FitLine(logRank, logFreq)
	if err != nil {
		return stats.ZipfFit{}, err
	}
	return stats.ZipfFit{Alpha: -fit.Slope, R2: fit.R2, Ranks: n}, nil
}

// SizeAccess is the Figure 3/4 analysis: how jobs and stored bytes
// distribute over file sizes. JobsCDF is the "fraction of jobs accessing
// files of size <= x" curve; BytesCDF is the "cumulative fraction of all
// stored bytes from files of size <= x" curve, where stored bytes counts
// each distinct file once at its final size.
type SizeAccess struct {
	Workload string
	JobsCDF  *stats.CDF // sample: one entry per access, valued at file size
	BytesCDF []stats.Point
	// TotalStored is the total bytes across distinct files.
	TotalStored units.Bytes
	// DistinctFiles counts files observed.
	DistinctFiles int
}

// InputSizeAccess computes Figure 3 over input files.
func InputSizeAccess(t *trace.Trace) (*SizeAccess, error) {
	return sizeAccess(t, func(j *trace.Job) (string, units.Bytes) { return j.InputPath, j.InputBytes })
}

// OutputSizeAccess computes Figure 4 over output files.
func OutputSizeAccess(t *trace.Trace) (*SizeAccess, error) {
	return sizeAccess(t, func(j *trace.Job) (string, units.Bytes) { return j.OutputPath, j.OutputBytes })
}

func sizeAccess(t *trace.Trace, get func(*trace.Job) (string, units.Bytes)) (*SizeAccess, error) {
	fileSize := make(map[string]units.Bytes)
	var accessSizes []float64
	for _, j := range t.Jobs {
		p, size := get(j)
		if p == "" {
			continue
		}
		fileSize[p] = size // final size wins (outputs may be overwritten)
		accessSizes = append(accessSizes, float64(size))
	}
	if len(fileSize) == 0 {
		return nil, errors.New("analysis: trace carries no usable path data")
	}
	sizes := make([]float64, 0, len(fileSize))
	var total float64
	for _, s := range fileSize {
		sizes = append(sizes, float64(s))
		total += float64(s)
	}
	sort.Float64s(sizes)
	// Bytes CDF: cumulative stored bytes vs file size.
	pts := make([]stats.Point, 0, len(sizes))
	var cum float64
	for i := 0; i < len(sizes); {
		k := i
		for k < len(sizes) && sizes[k] == sizes[i] {
			cum += sizes[k]
			k++
		}
		frac := 0.0
		if total > 0 {
			frac = cum / total
		}
		pts = append(pts, stats.Point{X: sizes[i], Y: frac})
		i = k
	}
	return &SizeAccess{
		Workload:      t.Meta.Name,
		JobsCDF:       stats.NewCDF(accessSizes),
		BytesCDF:      pts,
		TotalStored:   units.Bytes(total),
		DistinctFiles: len(fileSize),
	}, nil
}

// BytesFractionAt returns the cumulative stored-bytes fraction for files
// of size <= x.
func (s *SizeAccess) BytesFractionAt(x float64) float64 {
	idx := sort.Search(len(s.BytesCDF), func(i int) bool { return s.BytesCDF[i].X > x })
	if idx == 0 {
		return 0
	}
	return s.BytesCDF[idx-1].Y
}

// EightyRule evaluates the paper's "80-N rule" (§4.2): the percentage of
// stored bytes that receives 80% of accesses. The paper reports values
// between an 80-1 and an 80-8 rule across workloads. It returns N in
// percent (e.g. 4.0 means an 80-4 rule).
func (s *SizeAccess) EightyRule() float64 {
	x := s.JobsCDF.Quantile(0.8) // file size below which 80% of accesses fall
	return 100 * s.BytesFractionAt(x)
}

// ReaccessFractions is the Figure 6 analysis: of all jobs, what fraction
// read an input path that already existed as some earlier job's input
// (re-access pre-existing input) or output (re-access pre-existing
// output). FB-2010 lacks output paths, so OutputReaccess is measurable
// only for the CC workloads — exactly the caveat in the figure.
type ReaccessFractions struct {
	Workload string
	// InputReaccess is the fraction of jobs whose input path was seen
	// before as an input.
	InputReaccess float64
	// OutputReaccess is the fraction of jobs whose input path was seen
	// before as an output.
	OutputReaccess float64
	// OutputObservable reports whether the trace carries output paths.
	OutputObservable bool
}

// Reaccess computes Figure 6 for a trace.
func Reaccess(t *trace.Trace) (*ReaccessFractions, error) {
	if !t.HasPaths() {
		return nil, errors.New("analysis: trace carries no input paths")
	}
	seenInput := make(map[string]bool)
	seenOutput := make(map[string]bool)
	inputRe, outputRe, jobs := 0, 0, 0
	for _, j := range t.Jobs {
		if j.InputPath != "" {
			jobs++
			switch {
			case seenInput[j.InputPath]:
				inputRe++
			case seenOutput[j.InputPath]:
				outputRe++
			}
			seenInput[j.InputPath] = true
		}
		if j.OutputPath != "" {
			seenOutput[j.OutputPath] = true
		}
	}
	if jobs == 0 {
		return nil, errors.New("analysis: no jobs with input paths")
	}
	return &ReaccessFractions{
		Workload:         t.Meta.Name,
		InputReaccess:    float64(inputRe) / float64(jobs),
		OutputReaccess:   float64(outputRe) / float64(jobs),
		OutputObservable: t.HasOutputPaths(),
	}, nil
}
