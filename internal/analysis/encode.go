package analysis

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/binenc"
	"repro/internal/stats"
	"repro/internal/units"
)

// Binary snapshot encoding for the three streamed section builders, so
// the durable storage engine can persist a core.Partial and a restarted
// service can finalize reports without re-reading a single job. The
// encodings restore builder state exactly — integer bins, exact-sum
// expansions, and (in exact Figure 1 mode) the raw per-job samples — so
// a decoded builder's Result()/Series() is byte-identical to the live
// builder's, and it remains a valid merge partner for future shards.

// AppendBinary appends the Figure 1 builder state. Exact mode stores
// the three per-job sample arrays verbatim; sketch mode stores the
// three fixed-memory sketches.
func (b *DataSizeBuilder) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendString(buf, b.workload)
	buf = binenc.AppendBool(buf, b.sketch)
	buf = binenc.AppendUvarint(buf, uint64(b.n))
	if b.sketch {
		buf = b.hin.AppendBinary(buf)
		buf = b.hsh.AppendBinary(buf)
		return b.ho.AppendBinary(buf)
	}
	for _, col := range [][]float64{b.in, b.sh, b.out} {
		buf = binenc.AppendUvarint(buf, uint64(len(col)))
		for _, v := range col {
			buf = binenc.AppendFloat64(buf, v)
		}
	}
	return buf
}

// Sketch reports whether the builder accumulates in fixed-memory
// sketch mode.
func (b *DataSizeBuilder) Sketch() bool { return b.sketch }

// ReadDataSizeBuilder decodes a builder written by AppendBinary.
func ReadDataSizeBuilder(r *binenc.Reader) *DataSizeBuilder {
	b := &DataSizeBuilder{
		workload: r.String(),
		sketch:   r.Bool(),
		n:        int(r.Uvarint()),
	}
	if b.sketch {
		b.hin = stats.ReadQuantileSketch(r)
		b.hsh = stats.ReadQuantileSketch(r)
		b.ho = stats.ReadQuantileSketch(r)
		return b
	}
	for _, col := range []*[]float64{&b.in, &b.sh, &b.out} {
		n := r.Count(8)
		*col = make([]float64, n)
		for i := range *col {
			(*col)[i] = r.Float64()
		}
	}
	return b
}

// AppendBinary appends the Figures 7–9 builder state: the origin and
// every hourly bin (integer counts and byte totals, exact-sum task
// time). The origin is stored at nanosecond precision so a decoded
// builder merges with live shard builders of the same trace.
func (b *TimeSeriesBuilder) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendString(buf, b.workload)
	buf = binenc.AppendVarint(buf, b.start.UnixNano())
	buf = binenc.AppendUvarint(buf, uint64(b.hours))
	for h := 0; h < b.hours; h++ {
		buf = binenc.AppendVarint(buf, b.jobs[h])
		buf = binenc.AppendVarint(buf, int64(b.bytes[h]))
		buf = b.task[h].AppendBinary(buf)
		buf = b.spread[h].AppendBinary(buf)
	}
	return buf
}

// ReadTimeSeriesBuilder decodes a builder written by AppendBinary. It
// errors (through the reader) on a bin count that cannot fit the
// remaining input.
func ReadTimeSeriesBuilder(r *binenc.Reader) *TimeSeriesBuilder {
	b := &TimeSeriesBuilder{
		workload: r.String(),
		start:    time.Unix(0, r.Varint()).UTC(),
		hours:    r.Count(2),
	}
	b.jobs = make([]int64, b.hours)
	b.bytes = make([]units.Bytes, b.hours)
	b.task = make([]stats.ExactSum, b.hours)
	b.spread = make([]stats.ExactSum, b.hours)
	for h := 0; h < b.hours; h++ {
		b.jobs[h] = r.Varint()
		b.bytes[h] = units.Bytes(r.Varint())
		b.task[h] = stats.ReadExactSum(r)
		b.spread[h] = stats.ReadExactSum(r)
	}
	return b
}

// AppendBinary appends the Figure 10 builder state, with the first-word
// buckets in sorted word order so the encoding is deterministic.
func (b *NamesBuilder) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendString(buf, b.workload)
	buf = binenc.AppendBool(buf, b.named)
	buf = binenc.AppendVarint(buf, b.totJobs)
	buf = binenc.AppendVarint(buf, int64(b.totBytes))
	buf = b.totTask.AppendBinary(buf)
	words := make([]string, 0, len(b.groups))
	for w := range b.groups {
		words = append(words, w)
	}
	sort.Strings(words)
	buf = binenc.AppendUvarint(buf, uint64(len(words)))
	for _, w := range words {
		g := b.groups[w]
		buf = binenc.AppendString(buf, w)
		buf = binenc.AppendVarint(buf, g.jobs)
		buf = binenc.AppendVarint(buf, int64(g.bytes))
		buf = g.taskTime.AppendBinary(buf)
	}
	return buf
}

// ReadNamesBuilder decodes a builder written by AppendBinary.
func ReadNamesBuilder(r *binenc.Reader) (*NamesBuilder, error) {
	b := &NamesBuilder{
		workload: r.String(),
		named:    r.Bool(),
		totJobs:  r.Varint(),
		totBytes: units.Bytes(r.Varint()),
		totTask:  stats.ReadExactSum(r),
		groups:   make(map[string]*nameAgg),
	}
	n := r.Count(3)
	for i := 0; i < n; i++ {
		w := r.String()
		g := &nameAgg{
			jobs:     r.Varint(),
			bytes:    units.Bytes(r.Varint()),
			taskTime: stats.ReadExactSum(r),
		}
		if r.Err() != nil {
			break
		}
		if _, dup := b.groups[w]; dup {
			return nil, fmt.Errorf("analysis: duplicate name bucket %q in snapshot", w)
		}
		b.groups[w] = g
	}
	return b, nil
}
