package cache

import (
	"container/heap"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

// Clairvoyant is a Belady-style offline policy for whole-file caching:
// given the full future access sequence, it evicts the cached file whose
// next access lies farthest in the future (never-again files first). It is
// not implementable online; it exists to upper-bound what any real policy
// (LRU, LFU, size-threshold, TTL) could achieve on a trace, which turns
// the §4 policy comparison into "percent of optimal" statements.
//
// Build it with NewClairvoyant over the same trace that will be simulated;
// Access calls must then be issued in exactly the trace's input-access
// order (Simulate does this).
type Clairvoyant struct {
	capacity units.Bytes
	used     units.Bytes
	// nextUse[path] is the queue of future access indices for the path.
	nextUse map[string][]int
	// cursor counts accesses processed so far.
	cursor int
	items  map[string]*clairEntry
	pq     clairHeap
}

type clairEntry struct {
	path  string
	size  units.Bytes
	next  int // index of the next future access (math.MaxInt-like when none)
	index int
}

// neverAgain sorts entries with no future use to the top of the eviction
// heap.
const neverAgain = int(^uint(0) >> 1)

// NewClairvoyant precomputes the future access schedule from the trace.
func NewClairvoyant(t *trace.Trace, capacity units.Bytes) *Clairvoyant {
	c := &Clairvoyant{
		capacity: capacity,
		nextUse:  make(map[string][]int),
		items:    make(map[string]*clairEntry),
	}
	idx := 0
	for _, j := range t.Jobs {
		if j.InputPath == "" {
			continue
		}
		c.nextUse[j.InputPath] = append(c.nextUse[j.InputPath], idx)
		idx++
	}
	return c
}

// Name implements Policy.
func (c *Clairvoyant) Name() string { return "Clairvoyant" }

// Used implements Policy.
func (c *Clairvoyant) Used() units.Bytes { return c.used }

// Access implements Policy. The now parameter is unused: the oracle works
// on access indices.
func (c *Clairvoyant) Access(path string, size units.Bytes, now time.Time) bool {
	myIdx := c.cursor
	c.cursor++
	// Pop this access off the path's schedule.
	sched := c.nextUse[path]
	for len(sched) > 0 && sched[0] <= myIdx {
		sched = sched[1:]
	}
	c.nextUse[path] = sched
	next := neverAgain
	if len(sched) > 0 {
		next = sched[0]
	}

	if e, ok := c.items[path]; ok {
		if next == neverAgain {
			// Final read: the slot is dead weight from here on, free it.
			heap.Remove(&c.pq, e.index)
			delete(c.items, path)
			c.used -= e.size
			return true
		}
		if e.size != size {
			c.used += size - e.size
			e.size = size
		}
		e.next = next
		heap.Fix(&c.pq, e.index)
		c.evictOver()
		return true
	}
	if size > c.capacity {
		return false
	}
	if next == neverAgain {
		// Belady never caches a file that will not be read again.
		return false
	}
	e := &clairEntry{path: path, size: size, next: next}
	heap.Push(&c.pq, e)
	c.items[path] = e
	c.used += size
	c.evictOver()
	return false
}

func (c *Clairvoyant) evictOver() {
	for c.used > c.capacity && c.pq.Len() > 0 {
		e := heap.Pop(&c.pq).(*clairEntry)
		delete(c.items, e.path)
		c.used -= e.size
	}
}

// clairHeap is a max-heap on next-use distance: the root is the entry
// whose next access is farthest away.
type clairHeap []*clairEntry

func (h clairHeap) Len() int           { return len(h) }
func (h clairHeap) Less(i, k int) bool { return h[i].next > h[k].next }
func (h clairHeap) Swap(i, k int)      { h[i], h[k] = h[k], h[i]; h[i].index = i; h[k].index = k }
func (h *clairHeap) Push(x any)        { e := x.(*clairEntry); e.index = len(*h); *h = append(*h, e) }
func (h *clairHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

var _ Policy = (*Clairvoyant)(nil)
