package cache

import (
	"errors"

	"repro/internal/trace"
	"repro/internal/units"
)

// Result reports how a policy performed over a trace's input accesses.
type Result struct {
	Policy string
	// Accesses is the number of input reads simulated.
	Accesses int
	// HitRate is hits / accesses.
	HitRate float64
	// ByteHitRate weights hits by file size: the fraction of read bytes
	// served from cache.
	ByteHitRate float64
	// PeakUsed is the high-water cache occupancy.
	PeakUsed units.Bytes
}

// Simulate replays a trace's input-file accesses through the policy. The
// trace must carry input paths (§4.2's analyzable workloads). Output
// writes update cached entries' sizes via a subsequent read's size, which
// the trace model guarantees (jobs read the file's current size).
func Simulate(t *trace.Trace, p Policy) (Result, error) {
	if !t.HasPaths() {
		return Result{}, errors.New("cache: trace carries no input paths")
	}
	res := Result{Policy: p.Name()}
	var hitBytes, totalBytes float64
	hits := 0
	for _, j := range t.Jobs {
		if j.InputPath == "" {
			continue
		}
		res.Accesses++
		totalBytes += float64(j.InputBytes)
		if p.Access(j.InputPath, j.InputBytes, j.SubmitTime) {
			hits++
			hitBytes += float64(j.InputBytes)
		}
		if u := p.Used(); u > res.PeakUsed {
			res.PeakUsed = u
		}
	}
	if res.Accesses == 0 {
		return Result{}, errors.New("cache: no input accesses in trace")
	}
	res.HitRate = float64(hits) / float64(res.Accesses)
	if totalBytes > 0 {
		res.ByteHitRate = hitBytes / totalBytes
	}
	return res, nil
}

// Compare runs several policies over the same trace.
func Compare(t *trace.Trace, policies []Policy) ([]Result, error) {
	out := make([]Result, 0, len(policies))
	for _, p := range policies {
		r, err := Simulate(t, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
