package cache

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// mkTrace builds a trace whose input accesses follow the given path
// sequence (all files 40 bytes).
func mkTrace(paths ...string) *trace.Trace {
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := trace.New(trace.Meta{Name: "seq", Machines: 1, Start: start, Length: time.Hour})
	for i, p := range paths {
		tr.Add(&trace.Job{
			ID:         int64(i + 1),
			SubmitTime: start.Add(time.Duration(i) * time.Minute),
			Duration:   time.Second,
			InputBytes: 40,
			MapTasks:   1,
			MapTime:    1,
			InputPath:  p,
		})
	}
	return tr
}

func TestClairvoyantBeatsLRUOnAdversarialPattern(t *testing.T) {
	// Cyclic access over 3 files with capacity for 2: LRU thrashes to 0%
	// hits; Belady keeps 2 of the 3 and hits on them.
	var paths []string
	for i := 0; i < 30; i++ {
		paths = append(paths, "/a", "/b", "/c")
	}
	tr := mkTrace(paths...)

	lru, err := Simulate(tr, NewLRU(80))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Simulate(tr, NewClairvoyant(tr, 80))
	if err != nil {
		t.Fatal(err)
	}
	if lru.HitRate > 0.01 {
		t.Errorf("LRU on cyclic pattern = %v, want ~0 (thrash)", lru.HitRate)
	}
	if opt.HitRate < 0.4 {
		t.Errorf("Clairvoyant hit rate = %v, want >= 0.4", opt.HitRate)
	}
	if opt.HitRate <= lru.HitRate {
		t.Error("Clairvoyant must beat LRU on its adversarial pattern")
	}
}

func TestClairvoyantNeverCachesDeadFiles(t *testing.T) {
	tr := mkTrace("/once", "/twice", "/twice", "/once2")
	c := NewClairvoyant(tr, 1000)
	res, err := Simulate(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	// Only /twice is re-read: 1 hit out of 4 accesses.
	if res.HitRate != 0.25 {
		t.Errorf("hit rate = %v, want 0.25", res.HitRate)
	}
	if c.Used() != 0 {
		// After the final access nothing has a future use; Belady holds
		// only /twice between accesses 2 and 3, then never re-admits.
		t.Errorf("used = %v, want 0 at end", c.Used())
	}
}

func TestClairvoyantOversized(t *testing.T) {
	tr := mkTrace("/big", "/big")
	c := NewClairvoyant(tr, 10) // files are 40 bytes
	res, err := Simulate(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate != 0 {
		t.Errorf("oversized files must bypass, hit rate %v", res.HitRate)
	}
}

func TestClairvoyantUpperBoundsRealPolicies(t *testing.T) {
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 33, Duration: 3 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	capacity := 50 * units.GB
	opt, err := Simulate(tr, NewClairvoyant(tr, capacity))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{NewLRU(capacity), NewLFU(capacity), NewFIFO(capacity)} {
		res, err := Simulate(tr, pol)
		if err != nil {
			t.Fatal(err)
		}
		// Allow a whisker of slack: whole-file Belady with varying file
		// sizes is not provably optimal (it is for uniform sizes), but it
		// should dominate in practice.
		if res.HitRate > opt.HitRate+0.02 {
			t.Errorf("%s hit rate %v exceeds clairvoyant %v", pol.Name(), res.HitRate, opt.HitRate)
		}
	}
	if opt.HitRate <= 0 {
		t.Error("clairvoyant should achieve hits on CC-e")
	}
}
