// Package cache implements the caching policies whose viability §4 of the
// paper establishes and a trace-driven simulator to compare them:
//
//   - the Zipf-skewed access frequencies (Fig 2) mean "any data caching
//     policy that includes the frequently accessed files will bring
//     considerable benefit" — LFU exploits exactly that;
//   - Figures 3-4 show 90% of jobs read files < a few GB holding ≤16% of
//     stored bytes, so "a viable cache policy is to cache files whose size
//     is less than a threshold" — SizeThreshold;
//   - Figure 5's temporal locality (75% of re-accesses within 6 hours)
//     means "any similar policy to least-recently-used (LRU) would make
//     sense" — LRU and a TTL-style eviction.
//
// Policies cache whole files (the paper reasons about whole-file caching
// and eviction) under a byte-capacity budget.
package cache

import (
	"container/heap"
	"container/list"
	"errors"
	"time"

	"repro/internal/units"
)

// Policy is a byte-budgeted whole-file cache.
type Policy interface {
	// Access processes a read of the file and reports whether it hit.
	// Admission and eviction are policy-internal.
	Access(path string, size units.Bytes, now time.Time) bool
	// Used returns current cache occupancy in bytes.
	Used() units.Bytes
	// Name identifies the policy in reports.
	Name() string
}

// entry is a cached file.
type entry struct {
	path string
	size units.Bytes
	// freq is maintained by LFU; lastUse by LRU/TTL.
	freq    uint64
	lastUse time.Time
	// elem backs LRU's list; index backs LFU's heap.
	elem  *list.Element
	index int
}

// --- LRU ---

// LRU evicts the least-recently-used file when over capacity.
type LRU struct {
	capacity units.Bytes
	used     units.Bytes
	items    map[string]*entry
	order    *list.List // front = most recent
}

// NewLRU creates an LRU cache with the given byte capacity.
func NewLRU(capacity units.Bytes) *LRU {
	return &LRU{capacity: capacity, items: make(map[string]*entry), order: list.New()}
}

// Name implements Policy.
func (c *LRU) Name() string { return "LRU" }

// Used implements Policy.
func (c *LRU) Used() units.Bytes { return c.used }

// Access implements Policy.
func (c *LRU) Access(path string, size units.Bytes, now time.Time) bool {
	if e, ok := c.items[path]; ok {
		// A file may have been rewritten at a different size.
		if e.size != size {
			c.used += size - e.size
			e.size = size
			c.evictOver()
		}
		e.lastUse = now
		c.order.MoveToFront(e.elem)
		return true
	}
	if size > c.capacity {
		return false // cannot ever fit; bypass
	}
	e := &entry{path: path, size: size, lastUse: now}
	e.elem = c.order.PushFront(e)
	c.items[path] = e
	c.used += size
	c.evictOver()
	return false
}

func (c *LRU) evictOver() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.items, e.path)
		c.used -= e.size
	}
}

// --- FIFO ---

// FIFO evicts in insertion order regardless of use.
type FIFO struct {
	capacity units.Bytes
	used     units.Bytes
	items    map[string]*entry
	order    *list.List // front = newest
}

// NewFIFO creates a FIFO cache with the given byte capacity.
func NewFIFO(capacity units.Bytes) *FIFO {
	return &FIFO{capacity: capacity, items: make(map[string]*entry), order: list.New()}
}

// Name implements Policy.
func (c *FIFO) Name() string { return "FIFO" }

// Used implements Policy.
func (c *FIFO) Used() units.Bytes { return c.used }

// Access implements Policy.
func (c *FIFO) Access(path string, size units.Bytes, now time.Time) bool {
	if e, ok := c.items[path]; ok {
		if e.size != size {
			c.used += size - e.size
			e.size = size
			c.evictOver()
		}
		return true
	}
	if size > c.capacity {
		return false
	}
	e := &entry{path: path, size: size}
	e.elem = c.order.PushFront(e)
	c.items[path] = e
	c.used += size
	c.evictOver()
	return false
}

func (c *FIFO) evictOver() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.items, e.path)
		c.used -= e.size
	}
}

// --- LFU ---

// LFU evicts the least-frequently-used file, breaking ties by recency.
type LFU struct {
	capacity units.Bytes
	used     units.Bytes
	items    map[string]*entry
	pq       lfuHeap
}

// NewLFU creates an LFU cache with the given byte capacity.
func NewLFU(capacity units.Bytes) *LFU {
	return &LFU{capacity: capacity, items: make(map[string]*entry)}
}

// Name implements Policy.
func (c *LFU) Name() string { return "LFU" }

// Used implements Policy.
func (c *LFU) Used() units.Bytes { return c.used }

// Access implements Policy.
func (c *LFU) Access(path string, size units.Bytes, now time.Time) bool {
	if e, ok := c.items[path]; ok {
		if e.size != size {
			c.used += size - e.size
			e.size = size
		}
		e.freq++
		e.lastUse = now
		heap.Fix(&c.pq, e.index)
		c.evictOver()
		return true
	}
	if size > c.capacity {
		return false
	}
	e := &entry{path: path, size: size, freq: 1, lastUse: now}
	heap.Push(&c.pq, e)
	c.items[path] = e
	c.used += size
	c.evictOver()
	return false
}

func (c *LFU) evictOver() {
	for c.used > c.capacity && c.pq.Len() > 0 {
		e := heap.Pop(&c.pq).(*entry)
		delete(c.items, e.path)
		c.used -= e.size
	}
}

// lfuHeap is a min-heap on (freq, lastUse).
type lfuHeap []*entry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, k int) bool {
	if h[i].freq != h[k].freq {
		return h[i].freq < h[k].freq
	}
	return h[i].lastUse.Before(h[k].lastUse)
}
func (h lfuHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].index = i
	h[k].index = k
}
func (h *lfuHeap) Push(x any) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// --- Size threshold admission ---

// SizeThreshold wraps an inner policy, admitting only files smaller than
// the threshold. The §4.2 analysis shows this detaches cache capacity
// growth from data growth while retaining most accesses.
type SizeThreshold struct {
	Inner     Policy
	Threshold units.Bytes
}

// NewSizeThresholdLRU is the paper's recommended combination: admit files
// below threshold, evict by LRU.
func NewSizeThresholdLRU(capacity, threshold units.Bytes) *SizeThreshold {
	return &SizeThreshold{Inner: NewLRU(capacity), Threshold: threshold}
}

// Name implements Policy.
func (c *SizeThreshold) Name() string { return "SizeThreshold+" + c.Inner.Name() }

// Used implements Policy.
func (c *SizeThreshold) Used() units.Bytes { return c.Inner.Used() }

// Access implements Policy.
func (c *SizeThreshold) Access(path string, size units.Bytes, now time.Time) bool {
	if size >= c.Threshold {
		return false
	}
	return c.Inner.Access(path, size, now)
}

// --- TTL eviction ---

// TTL caches every admitted file and evicts files idle beyond the
// workload-specific threshold duration — the eviction rule §4.3 suggests
// ("evict entire files that have not been accessed for longer than a
// workload specific threshold duration"). Capacity still bounds usage;
// over-capacity falls back to evicting the most idle files first.
type TTL struct {
	capacity units.Bytes
	ttl      time.Duration
	used     units.Bytes
	items    map[string]*entry
	order    *list.List // front = most recently used
}

// NewTTL creates a TTL cache.
func NewTTL(capacity units.Bytes, ttl time.Duration) (*TTL, error) {
	if ttl <= 0 {
		return nil, errors.New("cache: TTL must be positive")
	}
	return &TTL{capacity: capacity, ttl: ttl, items: make(map[string]*entry), order: list.New()}, nil
}

// Name implements Policy.
func (c *TTL) Name() string { return "TTL" }

// Used implements Policy.
func (c *TTL) Used() units.Bytes { return c.used }

// Access implements Policy.
func (c *TTL) Access(path string, size units.Bytes, now time.Time) bool {
	c.expire(now)
	if e, ok := c.items[path]; ok {
		if e.size != size {
			c.used += size - e.size
			e.size = size
		}
		e.lastUse = now
		c.order.MoveToFront(e.elem)
		c.evictOver()
		return true
	}
	if size > c.capacity {
		return false
	}
	e := &entry{path: path, size: size, lastUse: now}
	e.elem = c.order.PushFront(e)
	c.items[path] = e
	c.used += size
	c.evictOver()
	return false
}

// expire drops files idle past the TTL.
func (c *TTL) expire(now time.Time) {
	for {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		if now.Sub(e.lastUse) <= c.ttl {
			return
		}
		c.order.Remove(back)
		delete(c.items, e.path)
		c.used -= e.size
	}
}

func (c *TTL) evictOver() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.items, e.path)
		c.used -= e.size
	}
}

// Compile-time interface checks.
var (
	_ Policy = (*LRU)(nil)
	_ Policy = (*FIFO)(nil)
	_ Policy = (*LFU)(nil)
	_ Policy = (*SizeThreshold)(nil)
	_ Policy = (*TTL)(nil)
)
