package cache

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/units"
)

var t0 = time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)

func at(m int) time.Time { return t0.Add(time.Duration(m) * time.Minute) }

func TestLRUBasics(t *testing.T) {
	c := NewLRU(100)
	if c.Access("/a", 40, at(0)) {
		t.Error("first access should miss")
	}
	if !c.Access("/a", 40, at(1)) {
		t.Error("second access should hit")
	}
	c.Access("/b", 40, at(2))
	c.Access("/c", 40, at(3)) // evicts /a (LRU since /a used at 1 < /b at 2)
	if c.Access("/a", 40, at(4)) {
		t.Error("/a should have been evicted")
	}
	if !c.Access("/c", 40, at(5)) {
		t.Error("/c should still be cached")
	}
	if c.Used() > 100 {
		t.Errorf("used %v exceeds capacity", c.Used())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(100)
	c.Access("/a", 40, at(0))
	c.Access("/b", 40, at(1))
	c.Access("/a", 40, at(2)) // refresh /a
	c.Access("/c", 40, at(3)) // must evict /b, not /a
	if !c.Access("/a", 40, at(4)) {
		t.Error("/a should survive (recently used)")
	}
	if c.Access("/b", 40, at(5)) {
		t.Error("/b should have been evicted")
	}
}

func TestLRUOversizedBypass(t *testing.T) {
	c := NewLRU(100)
	if c.Access("/huge", 500, at(0)) {
		t.Error("oversized first access should miss")
	}
	if c.Access("/huge", 500, at(1)) {
		t.Error("oversized file must bypass the cache entirely")
	}
	if c.Used() != 0 {
		t.Errorf("used = %v, want 0", c.Used())
	}
}

func TestLRUResize(t *testing.T) {
	c := NewLRU(100)
	c.Access("/a", 40, at(0))
	// File rewritten larger: second access still a hit but usage updates.
	if !c.Access("/a", 90, at(1)) {
		t.Error("resized access should hit")
	}
	if c.Used() != 90 {
		t.Errorf("used = %v, want 90", c.Used())
	}
	// Growing beyond capacity evicts it.
	c.Access("/b", 20, at(2))
	if c.Used() > 100 {
		t.Errorf("used %v exceeds capacity", c.Used())
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO(100)
	c.Access("/a", 40, at(0))
	c.Access("/b", 40, at(1))
	c.Access("/a", 40, at(2)) // refresh does not move /a in FIFO order
	c.Access("/c", 40, at(3)) // evicts /a (oldest insertion)
	if !c.Access("/b", 40, at(4)) {
		t.Error("/b should still be cached")
	}
	// Probe /a last: this access re-inserts it.
	if c.Access("/a", 40, at(5)) {
		t.Error("/a should have been evicted by FIFO")
	}
}

func TestLFUKeepsHotFiles(t *testing.T) {
	c := NewLFU(100)
	for i := 0; i < 10; i++ {
		c.Access("/hot", 40, at(i))
	}
	c.Access("/cold1", 40, at(20))
	c.Access("/cold2", 40, at(21)) // evicts a cold file, never /hot
	if !c.Access("/hot", 40, at(22)) {
		t.Error("/hot must survive LFU eviction")
	}
}

func TestLFUTieBreakByRecency(t *testing.T) {
	c := NewLFU(80)
	c.Access("/a", 40, at(0))
	c.Access("/b", 40, at(1))
	c.Access("/c", 40, at(2)) // both freq=1; /a older -> evicted
	if c.Access("/a", 40, at(3)) {
		t.Error("/a should have been evicted (freq tie, older)")
	}
}

func TestSizeThreshold(t *testing.T) {
	c := NewSizeThresholdLRU(units.GB, 100*units.MB)
	if c.Access("/big", units.GB, at(0)) {
		t.Error("big file miss expected")
	}
	c.Access("/big", units.GB, at(1))
	if c.Used() != 0 {
		t.Error("big files must not be admitted")
	}
	c.Access("/small", 10*units.MB, at(2))
	if !c.Access("/small", 10*units.MB, at(3)) {
		t.Error("small file should be cached")
	}
	if got := c.Name(); got != "SizeThreshold+LRU" {
		t.Errorf("Name = %q", got)
	}
}

func TestTTLEviction(t *testing.T) {
	c, err := NewTTL(units.GB, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c.Access("/a", units.MB, at(0))
	if !c.Access("/a", units.MB, at(30)) {
		t.Error("within TTL should hit")
	}
	if c.Access("/a", units.MB, at(120)) {
		t.Error("expired entry should miss")
	}
	if _, err := NewTTL(units.GB, 0); err == nil {
		t.Error("zero TTL should error")
	}
}

func TestTTLCapacity(t *testing.T) {
	c, err := NewTTL(100, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c.Access("/a", 60, at(0))
	c.Access("/b", 60, at(1)) // over capacity: /a evicted
	if c.Access("/a", 60, at(2)) {
		t.Error("/a should have been evicted by capacity pressure")
	}
	if c.Used() > 100 {
		t.Errorf("used %v over capacity", c.Used())
	}
}

func TestSimulateOnWorkload(t *testing.T) {
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 21, Duration: 5 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{
		NewLRU(50 * units.GB),
		NewLFU(50 * units.GB),
		NewFIFO(50 * units.GB),
		NewSizeThresholdLRU(50*units.GB, units.GB),
	}
	results, err := Compare(tr, policies)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Policy] = r
		if r.HitRate < 0 || r.HitRate > 1 || r.ByteHitRate < 0 || r.ByteHitRate > 1 {
			t.Errorf("%s: rates out of range: %+v", r.Policy, r)
		}
		if r.Accesses == 0 {
			t.Errorf("%s: no accesses", r.Policy)
		}
	}
	// CC-e re-accesses ~75% of inputs with strong temporal locality: a
	// reasonable cache should convert a good share into hits.
	if byName["LRU"].HitRate < 0.3 {
		t.Errorf("LRU hit rate = %v, want > 0.3 given CC-e's locality", byName["LRU"].HitRate)
	}
	// Recency/frequency-aware policies should not lose badly to FIFO.
	if byName["LRU"].HitRate < byName["FIFO"].HitRate-0.05 {
		t.Errorf("LRU (%v) should be at least comparable to FIFO (%v)",
			byName["LRU"].HitRate, byName["FIFO"].HitRate)
	}
	// The size-threshold cache achieves a high access hit rate with
	// bounded byte usage (the paper's sustainability argument).
	st := byName["SizeThreshold+LRU"]
	if st.PeakUsed > 50*units.GB {
		t.Errorf("size-threshold peak use %v over budget", st.PeakUsed)
	}
}

func TestSimulateErrors(t *testing.T) {
	p, _ := profile.ByName("FB-2009") // no paths
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 2, Duration: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(tr, NewLRU(units.GB)); err == nil {
		t.Error("pathless trace should error")
	}
}
