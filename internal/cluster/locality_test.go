package cluster

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/hdfs"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// localitySetup generates a CC-e window and populates a DFS matching the
// replay cluster's node count.
func localitySetup(t *testing.T, nodes int) (*trace.Trace, *hdfs.FS) {
	t.Helper()
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 77, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := hdfs.New(hdfs.Config{Datanodes: nodes, ReplicationFactor: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hdfs.PopulateFromTrace(fs, tr); err != nil {
		t.Fatal(err)
	}
	return tr, fs
}

func TestRunWithLocalityValidation(t *testing.T) {
	tr, fs := localitySetup(t, 50)
	if _, err := RunWithLocality(tr, nil, Config{Nodes: 50}); err == nil {
		t.Error("nil fs should error")
	}
	if _, err := RunWithLocality(tr, fs, Config{Nodes: 40}); err == nil {
		t.Error("node count mismatch should error")
	}
	empty := trace.New(trace.Meta{Name: "e", Start: tr.Meta.Start})
	if _, err := RunWithLocality(empty, fs, Config{Nodes: 50}); err == nil {
		t.Error("empty trace should error")
	}
}

func TestRunWithLocalityCompletes(t *testing.T) {
	tr, fs := localitySetup(t, 50)
	res, err := RunWithLocality(tr, fs, Config{Nodes: 50, Scheduler: Fair, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != tr.Len() {
		t.Fatalf("completed %d of %d", res.Completed, tr.Len())
	}
	total := res.LocalTasks + res.RemoteTasks + res.UntrackedTasks
	if total == 0 {
		t.Fatal("no map placements recorded")
	}
	if res.UntrackedTasks > total/10 {
		t.Errorf("untracked placements %d of %d; CC-e inputs should resolve", res.UntrackedTasks, total)
	}
	rate := res.LocalityRate()
	if rate <= 0 || rate > 1 {
		t.Fatalf("locality rate = %v", rate)
	}
	// With 3 replicas on 50 nodes and an uncontended cluster, most tasks
	// should find a replica slot free.
	if rate < 0.3 {
		t.Errorf("locality rate = %v, want reasonable on an uncontended cluster", rate)
	}
}

func TestLocalityDegradesUnderContention(t *testing.T) {
	// Shrinking per-node slots forces tasks off replica nodes: locality
	// on a tight cluster must not exceed locality on a roomy one.
	tr, fs := localitySetup(t, 50)
	roomy, err := RunWithLocality(tr, fs, Config{Nodes: 50, MapSlotsPerNode: 12, ReduceSlotsPerNode: 4, Scheduler: Fair, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunWithLocality(tr, fs, Config{Nodes: 50, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, Scheduler: Fair, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.LocalityRate() > roomy.LocalityRate()+0.05 {
		t.Errorf("tight cluster locality %v should not beat roomy %v",
			tight.LocalityRate(), roomy.LocalityRate())
	}
}

func TestLocalityConservesOccupancy(t *testing.T) {
	// The locality layer must not change the simulation's physics: same
	// trace, same makespan and occupancy as the plain run.
	tr, fs := localitySetup(t, 50)
	plain, err := Run(tr, Config{Nodes: 50, Scheduler: Fair, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := RunWithLocality(tr, fs, Config{Nodes: 50, Scheduler: Fair, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.MakespanSec != loc.MakespanSec {
		t.Errorf("makespan changed: %v vs %v", plain.MakespanSec, loc.MakespanSec)
	}
	if plain.MeanLatency() != loc.MeanLatency() {
		t.Errorf("latency changed: %v vs %v", plain.MeanLatency(), loc.MeanLatency())
	}
}

func TestHotFilesHurtLocality(t *testing.T) {
	// A single hot file read by many concurrent jobs: replicas live on 3
	// of 20 nodes, so concurrent readers beyond 3×slots must go remote.
	start := time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	tr := trace.New(trace.Meta{Name: "hot", Machines: 20, Start: start, Length: time.Hour})
	for i := int64(1); i <= 60; i++ {
		tr.Add(&trace.Job{
			ID: i, SubmitTime: start, Duration: time.Minute,
			InputBytes: 100 * units.MB, MapTasks: 1, MapTime: 600,
			InputPath: "/hot/file",
		})
	}
	fs, err := hdfs.New(hdfs.Config{Datanodes: 20, ReplicationFactor: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hdfs.PopulateFromTrace(fs, tr); err != nil {
		t.Fatal(err)
	}
	res, err := RunWithLocality(tr, fs, Config{Nodes: 20, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Scheduler: Fair, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 60 simultaneous readers vs 3 replica nodes × 2 slots = 6 local
	// slots: locality must collapse, matching the §4 point that skewed
	// popularity concentrates load on few replica holders.
	if res.LocalityRate() > 0.5 {
		t.Errorf("hot-file locality = %v, want degraded (< 0.5)", res.LocalityRate())
	}
	if res.LocalTasks == 0 {
		t.Error("some tasks should still land locally")
	}
}
