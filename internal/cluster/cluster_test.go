package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

var t0 = time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)

// tinyTrace builds a hand-constructed trace for exact-outcome tests.
func tinyTrace(jobs ...*trace.Job) *trace.Trace {
	tr := trace.New(trace.Meta{Name: "tiny", Machines: 1, Start: t0, Length: time.Hour})
	for _, j := range jobs {
		tr.Add(j)
	}
	tr.Sort()
	return tr
}

func job(id int64, offsetSec int, mapTasks int, mapTime float64, redTasks int, redTime float64) *trace.Job {
	return &trace.Job{
		ID:          id,
		SubmitTime:  t0.Add(time.Duration(offsetSec) * time.Second),
		Duration:    time.Minute,
		MapTasks:    mapTasks,
		MapTime:     units.TaskSeconds(mapTime),
		ReduceTasks: redTasks,
		ReduceTime:  units.TaskSeconds(redTime),
	}
}

func TestRunValidation(t *testing.T) {
	tr := tinyTrace(job(1, 0, 1, 10, 0, 0))
	if _, err := Run(tr, Config{}); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := Run(trace.New(trace.Meta{Name: "e", Start: t0}), Config{Nodes: 1}); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := Run(tr, Config{Nodes: 1, StragglerProb: 2}); err == nil {
		t.Error("bad straggler prob should error")
	}
	if _, err := Run(tr, Config{Nodes: 1, StragglerProb: 0.1, StragglerFactor: 0.5}); err == nil {
		t.Error("straggler factor < 1 should error")
	}
	if _, err := Run(tr, Config{Nodes: 1, MaxTasksPerJob: -1}); err == nil {
		t.Error("negative MaxTasksPerJob should error")
	}
	if _, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: -1}); err == nil {
		t.Error("negative slots should error")
	}
}

func TestSingleJobTiming(t *testing.T) {
	// 1 node, 2 map slots: 4 map tasks of 10s each run in 2 waves (20s),
	// then 1 reduce task of 30s. Finish = 50s.
	tr := tinyTrace(job(1, 0, 4, 40, 1, 30))
	res, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Jobs[1]
	if m.FinishSec != 50 {
		t.Errorf("finish = %v, want 50", m.FinishSec)
	}
	if m.QueueDelay() != 0 {
		t.Errorf("queue delay = %v, want 0", m.QueueDelay())
	}
	if res.MakespanSec != 50 {
		t.Errorf("makespan = %v, want 50", res.MakespanSec)
	}
}

func TestMapsBeforeReduces(t *testing.T) {
	// Reduce must not start until all maps finish: with 1 map slot, maps
	// serialize 3x10s, then reduce 5s => 35s.
	tr := tinyTrace(job(1, 0, 3, 30, 1, 5))
	res, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[1].FinishSec; got != 35 {
		t.Errorf("finish = %v, want 35", got)
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	// The paper warns "poor management of a single large job potentially
	// impacts performance for a large number of small jobs". Under FIFO, a
	// huge job ahead of a tiny one delays it; under Fair the tiny job slips
	// through.
	huge := job(1, 0, 8, 8*600, 0, 0) // 8 tasks x 600s
	tiny := job(2, 1, 1, 1, 0, 0)     // 1 task x 1s, arrives 1s later
	mk := func() *trace.Trace { return tinyTrace(huge, tiny) }

	fifo, err := Run(mk(), Config{Nodes: 1, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1, Scheduler: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Run(mk(), Config{Nodes: 1, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1, Scheduler: Fair})
	if err != nil {
		t.Fatal(err)
	}
	fifoTiny := fifo.Jobs[2].Latency()
	fairTiny := fair.Jobs[2].Latency()
	if fairTiny >= fifoTiny {
		t.Errorf("fair tiny-job latency %v should beat FIFO %v", fairTiny, fifoTiny)
	}
	// FIFO: the tiny job waits for both waves of the huge job (~1200s).
	if fifoTiny < 1100 {
		t.Errorf("FIFO tiny-job latency = %v, want head-of-line blocked (~1200s)", fifoTiny)
	}
	// Fair is non-preemptive: the tiny job still waits for the first wave
	// (~600s) but wins a slot at the first opportunity.
	if fairTiny > 650 {
		t.Errorf("fair tiny-job latency = %v, want ~600s (first wave)", fairTiny)
	}
}

func TestOccupancyIntegration(t *testing.T) {
	// One job, 1 map task, 1800s: occupies exactly one slot for the first
	// half hour -> hour 0 average occupancy = 0.5 slots.
	tr := tinyTrace(job(1, 0, 1, 1800, 0, 0))
	res, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HourlyOccupancy) == 0 {
		t.Fatal("no occupancy series")
	}
	if got := res.HourlyOccupancy[0]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("hour-0 occupancy = %v, want 0.5", got)
	}
	if res.TotalSlots != 4 {
		t.Errorf("total slots = %d, want 4", res.TotalSlots)
	}
}

func TestOccupancySpansHours(t *testing.T) {
	// A task running 2.5 hours contributes 1.0 to hours 0,1 and 0.5 to
	// hour 2.
	tr := tinyTrace(job(1, 0, 1, 9000, 0, 0))
	res, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0.5}
	for h, w := range want {
		if math.Abs(res.HourlyOccupancy[h]-w) > 1e-9 {
			t.Errorf("hour %d occupancy = %v, want %v", h, res.HourlyOccupancy[h], w)
		}
	}
}

func TestTaskCoalescing(t *testing.T) {
	// 10000 map tasks coalesce to MaxTasksPerJob while preserving total
	// task-time, so occupancy and finish stay sane.
	j := job(1, 0, 10000, 36000, 0, 0)
	tr := tinyTrace(j)
	res, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 10, ReduceSlotsPerNode: 1, MaxTasksPerJob: 100})
	if err != nil {
		t.Fatal(err)
	}
	// 100 tasks x 360s on 10 slots = 10 waves x 360s = 3600s.
	if got := res.Jobs[1].FinishSec; math.Abs(got-3600) > 1e-6 {
		t.Errorf("finish = %v, want 3600", got)
	}
	var occ float64
	for _, o := range res.HourlyOccupancy {
		occ += o * 3600
	}
	if math.Abs(occ-36000) > 1 {
		t.Errorf("integrated occupancy = %v slot-seconds, want 36000", occ)
	}
}

func TestStragglers(t *testing.T) {
	// With all tasks straggling 10x, the job takes 10x longer.
	tr := tinyTrace(job(1, 0, 2, 20, 0, 0))
	base, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		StragglerProb: 1, StragglerFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := slow.Jobs[1].FinishSec, base.Jobs[1].FinishSec*10; math.Abs(got-want) > 1e-6 {
		t.Errorf("straggled finish = %v, want %v", got, want)
	}
}

func TestDeterministicReplay(t *testing.T) {
	p, err := profile.ByName("CC-b")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 5, Duration: 12 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Nodes: p.Machines, Scheduler: Fair, Seed: 9, StragglerProb: 0.05, StragglerFactor: 3}
	a, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != b.MakespanSec || a.MeanLatency() != b.MeanLatency() {
		t.Error("same seed should reproduce the run exactly")
	}
}

func TestReplayGeneratedWorkload(t *testing.T) {
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 6, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, Config{Nodes: p.Machines, MapSlotsPerNode: p.SlotsPerMachine / 2,
		ReduceSlotsPerNode: p.SlotsPerMachine / 2, Scheduler: Fair})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != tr.Len() {
		t.Fatalf("completed %d of %d", res.Completed, tr.Len())
	}
	// Occupancy never exceeds capacity.
	for h, o := range res.HourlyOccupancy {
		if o > float64(res.TotalSlots)+1e-9 {
			t.Fatalf("hour %d occupancy %v exceeds %d slots", h, o, res.TotalSlots)
		}
		if o < 0 {
			t.Fatalf("negative occupancy at hour %d", h)
		}
	}
	// Every job's latency is at least its own computation lower bound.
	for id, m := range res.Jobs {
		if m.Latency() <= 0 {
			t.Fatalf("job %d has non-positive latency %v", id, m.Latency())
		}
		if m.QueueDelay() < 0 {
			t.Fatalf("job %d has negative queue delay", id)
		}
	}
	if res.MeanLatency() <= 0 || res.P99Latency() < res.MedianLatency() {
		t.Error("latency statistics inconsistent")
	}
}

func TestLatencyQuantiles(t *testing.T) {
	res := &Result{Jobs: map[int64]JobMetrics{}}
	for i := int64(1); i <= 100; i++ {
		res.Jobs[i] = JobMetrics{ID: i, ArrivalSec: 0, FinishSec: float64(i)}
	}
	if med := res.MedianLatency(); med < 49 || med > 52 {
		t.Errorf("median = %v, want ~50", med)
	}
	if p99 := res.P99Latency(); p99 < 98 || p99 > 100 {
		t.Errorf("p99 = %v, want ~99", p99)
	}
	empty := &Result{Jobs: map[int64]JobMetrics{}}
	if empty.MeanLatency() != 0 || empty.P99Latency() != 0 {
		t.Error("empty result should produce zero stats")
	}
}

func TestSchedulerKindString(t *testing.T) {
	if FIFO.String() != "fifo" || Fair.String() != "fair" {
		t.Error("scheduler names wrong")
	}
}
