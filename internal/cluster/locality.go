package cluster

import (
	"errors"

	"repro/internal/hdfs"
	"repro/internal/trace"
)

// Locality-aware replay: Hadoop's scheduler tries to run each map task on
// a node holding a replica of its input block, because a local read avoids
// a network transfer. The study's storage observations (Zipf popularity,
// small hot files — §4) interact with locality: a hot file has only a few
// replicas but many concurrent readers, so locality degrades exactly on
// the most popular data. This replay mode quantifies that: it tracks the
// fraction of map tasks placed on a replica node when the trace's input
// files live in a simulated DFS.
//
// The model keeps per-node map-slot accounting; reduce slots stay pooled
// (reducers read from every mapper, so reduce placement has no locality).

// LocalityResult extends a replay with placement quality.
type LocalityResult struct {
	*Result
	// LocalTasks and RemoteTasks count map-task placements for jobs whose
	// input file is known to the DFS.
	LocalTasks, RemoteTasks int
	// UntrackedTasks counts map tasks of jobs without a resolvable input
	// file (no path, or the file is unknown to the DFS).
	UntrackedTasks int
}

// LocalityRate is local / (local + remote).
func (r *LocalityResult) LocalityRate() float64 {
	total := r.LocalTasks + r.RemoteTasks
	if total == 0 {
		return 0
	}
	return float64(r.LocalTasks) / float64(total)
}

// RunWithLocality replays the trace with locality-aware map placement
// against the populated DFS. The DFS must have at least as many datanodes
// as the config has nodes... more precisely, node indices are shared: the
// simulated cluster's node i is datanode i, so fs.Datanodes() must equal
// cfg.Nodes.
func RunWithLocality(t *trace.Trace, fs *hdfs.FS, cfg Config) (*LocalityResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if fs == nil {
		return nil, errors.New("cluster: nil filesystem for locality replay")
	}
	if fs.Datanodes() != cfg.Nodes {
		return nil, errors.New("cluster: datanode count must match cluster nodes for locality replay")
	}
	if t.Len() == 0 {
		return nil, errors.New("cluster: empty trace")
	}
	sim := newSimulator(t, cfg)
	sim.locality = newLocalityTracker(fs, cfg)
	res, err := sim.run()
	if err != nil {
		return nil, err
	}
	return &LocalityResult{
		Result:         res,
		LocalTasks:     sim.locality.local,
		RemoteTasks:    sim.locality.remote,
		UntrackedTasks: sim.locality.untracked,
	}, nil
}

// localityTracker holds per-node map-slot accounting and the DFS handle.
type localityTracker struct {
	fs *hdfs.FS
	// freeMap[n] is free map slots on node n; cursor round-robins the
	// fallback scan so placement stays O(1) amortized.
	freeMap []int
	cursor  int
	// replicaCache memoizes ReplicaNodes per path: popular files are
	// looked up once, not once per task.
	replicaCache map[string][]int
	local        int
	remote       int
	untracked    int
}

func newLocalityTracker(fs *hdfs.FS, cfg Config) *localityTracker {
	lt := &localityTracker{
		fs:           fs,
		freeMap:      make([]int, cfg.Nodes),
		replicaCache: make(map[string][]int),
	}
	for i := range lt.freeMap {
		lt.freeMap[i] = cfg.MapSlotsPerNode
	}
	return lt
}

// maxBlocksForLocality bounds replica lookups: beyond a few blocks a file
// spans most of the cluster anyway and placement is effectively free.
const maxBlocksForLocality = 8

// place picks a node for one map task of the job, preferring replica
// holders. It returns the chosen node.
func (lt *localityTracker) place(js *jobState) int {
	path := js.job.InputPath
	if path != "" {
		replicas, ok := lt.replicaCache[path]
		if !ok {
			replicas = lt.fs.ReplicaNodes(path, maxBlocksForLocality)
			lt.replicaCache[path] = replicas
		}
		if len(replicas) > 0 {
			for _, n := range replicas {
				if lt.freeMap[n] > 0 {
					lt.freeMap[n]--
					lt.local++
					return n
				}
			}
			// All replica holders busy: run remote on any free node.
			n := lt.anyFree()
			lt.remote++
			return n
		}
	}
	n := lt.anyFree()
	lt.untracked++
	return n
}

// anyFree scans from the cursor for a node with a free map slot. The
// caller guarantees aggregate free capacity exists.
func (lt *localityTracker) anyFree() int {
	n := len(lt.freeMap)
	for i := 0; i < n; i++ {
		idx := (lt.cursor + i) % n
		if lt.freeMap[idx] > 0 {
			lt.freeMap[idx]--
			lt.cursor = (idx + 1) % n
			return idx
		}
	}
	// Unreachable when aggregate accounting is consistent; keep the
	// invariant loud in tests.
	panic("cluster: no free map slot despite aggregate availability")
}

// release frees a map slot on the node.
func (lt *localityTracker) release(node int) {
	lt.freeMap[node]++
}
