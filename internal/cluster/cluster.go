// Package cluster is a discrete-event simulator of a MapReduce cluster:
// nodes with map and reduce task slots, a pluggable job scheduler (FIFO or
// fair-share), task lifecycle with optional straggler injection, and
// metrics collection. It is the replay substrate standing in for the live
// Hadoop clusters the study's SWIM tools drive (DESIGN.md): replaying a
// trace yields the slot-occupancy time series of Figure 7's fourth column
// and lets scheduler and provisioning what-ifs run at laptop scale.
//
// The execution model is the classic Hadoop shape the paper assumes: a job
// runs its map tasks (in waves when tasks exceed slots), then its reduce
// tasks; per-task durations are the job's task-time divided evenly across
// its tasks. The paper's §6.2 observation that most jobs have a handful of
// tasks — making stragglers hard to even define — carries over directly.
package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// SchedulerKind selects the scheduling discipline.
type SchedulerKind int

// Supported schedulers.
const (
	// FIFO runs jobs strictly in arrival order (Hadoop's original default,
	// which the paper notes lets "a single large job potentially impact
	// performance for a large number of small jobs").
	FIFO SchedulerKind = iota
	// Fair round-robins task slots across runnable jobs, the discipline
	// the small-jobs-dominated workloads motivate.
	Fair
)

func (s SchedulerKind) String() string {
	if s == Fair {
		return "fair"
	}
	return "fifo"
}

// Config sizes the simulated cluster.
type Config struct {
	// Nodes in the cluster.
	Nodes int
	// MapSlotsPerNode and ReduceSlotsPerNode follow Hadoop 1.x static slot
	// configuration (defaults 2 map + 1 reduce... set explicitly; zero
	// means defaults 6 and 4 for the era's 8-12 core nodes).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// Scheduler discipline.
	Scheduler SchedulerKind
	// StragglerProb is the per-task probability of running StragglerFactor
	// times longer (Mantri-style outliers [10]); zero disables.
	StragglerProb   float64
	StragglerFactor float64
	// MaxTasksPerJob coalesces very wide jobs: a job with more tasks is
	// simulated as MaxTasksPerJob tasks of proportionally longer duration,
	// preserving total task-time and occupancy. Zero means 500.
	MaxTasksPerJob int
	// Seed drives straggler injection.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes <= 0 {
		return c, errors.New("cluster: need at least one node")
	}
	if c.MapSlotsPerNode == 0 {
		c.MapSlotsPerNode = 6
	}
	if c.ReduceSlotsPerNode == 0 {
		c.ReduceSlotsPerNode = 4
	}
	if c.MapSlotsPerNode < 0 || c.ReduceSlotsPerNode < 0 {
		return c, errors.New("cluster: negative slot count")
	}
	if c.StragglerProb < 0 || c.StragglerProb > 1 {
		return c, errors.New("cluster: straggler probability out of [0,1]")
	}
	if c.StragglerProb > 0 && c.StragglerFactor < 1 {
		return c, errors.New("cluster: straggler factor must be >= 1")
	}
	if c.MaxTasksPerJob == 0 {
		c.MaxTasksPerJob = 500
	}
	if c.MaxTasksPerJob < 1 {
		return c, errors.New("cluster: MaxTasksPerJob must be >= 1")
	}
	return c, nil
}

// JobMetrics records one job's simulated execution.
type JobMetrics struct {
	ID int64
	// ArrivalSec, FirstStartSec, FinishSec are seconds since trace start.
	ArrivalSec    float64
	FirstStartSec float64
	FinishSec     float64
}

// Latency is finish - arrival (the simulated makespan including queueing).
func (m JobMetrics) Latency() float64 { return m.FinishSec - m.ArrivalSec }

// QueueDelay is first task start - arrival.
func (m JobMetrics) QueueDelay() float64 { return m.FirstStartSec - m.ArrivalSec }

// Result aggregates a replay run.
type Result struct {
	Scheduler SchedulerKind
	// Jobs maps job ID to metrics for completed jobs.
	Jobs map[int64]JobMetrics
	// HourlyOccupancy[h] is the time-averaged number of busy slots (map +
	// reduce) during hour h — Figure 7's utilization column.
	HourlyOccupancy []float64
	// TotalSlots is the cluster's slot capacity, for normalizing the
	// occupancy series.
	TotalSlots int
	// MakespanSec is when the last task finished.
	MakespanSec float64
	// Completed counts finished jobs; Unfinished counts jobs still queued
	// or running at the horizon (the simulator runs to completion, so this
	// is nonzero only if the workload never drains, which cannot happen
	// with finite task times).
	Completed int
}

// MeanLatency returns the average job latency in seconds.
func (r *Result) MeanLatency() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	// Sum in sorted order: map iteration order would otherwise make the
	// floating-point sum run-to-run nondeterministic.
	lats := r.sortedLatencies()
	var s float64
	for _, l := range lats {
		s += l
	}
	return s / float64(len(lats))
}

// P99Latency returns the 99th percentile job latency in seconds.
func (r *Result) P99Latency() float64 { return r.latencyQuantile(0.99) }

// MedianLatency returns the median job latency in seconds.
func (r *Result) MedianLatency() float64 { return r.latencyQuantile(0.5) }

func (r *Result) latencyQuantile(q float64) float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	lats := r.sortedLatencies()
	idx := int(q * float64(len(lats)-1))
	return lats[idx]
}

// sortedLatencies returns all job latencies in ascending order.
func (r *Result) sortedLatencies() []float64 {
	lats := make([]float64, 0, len(r.Jobs))
	for _, m := range r.Jobs {
		lats = append(lats, m.Latency())
	}
	sortFloat64s(lats)
	return lats
}

func sortFloat64s(a []float64) {
	// Heapsort: avoids pulling in sort for a hot path and is deterministic.
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// --- event machinery ---

type eventKind int

const (
	evArrival eventKind = iota
	evMapDone
	evReduceDone
)

type event struct {
	at   float64 // seconds since trace start
	seq  int64   // tie-break for determinism
	kind eventKind
	job  *jobState
	// node is the map slot's node for locality-aware runs (-1 otherwise).
	node int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, k int) bool {
	if h[i].at != h[k].at {
		return h[i].at < h[k].at
	}
	return h[i].seq < h[k].seq
}
func (h eventHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// jobState tracks a job through the simulation.
type jobState struct {
	job         *trace.Job
	arrival     float64
	mapDur      float64 // per-map-task seconds
	reduceDur   float64 // per-reduce-task seconds
	mapsLeft    int     // not yet started
	mapsRunning int
	mapsDone    int
	mapsTotal   int
	redsLeft    int
	redsRunning int
	redsDone    int
	redsTotal   int
	firstStart  float64
	started     bool
	queueIdx    int // position in scheduler queue (FIFO bookkeeping)
}

func (js *jobState) mapsFinished() bool { return js.mapsDone == js.mapsTotal }
func (js *jobState) done() bool         { return js.mapsFinished() && js.redsDone == js.redsTotal }

// pendingTasks reports whether the job has schedulable work right now.
func (js *jobState) pendingMapWork() bool { return js.mapsLeft > 0 }
func (js *jobState) pendingReduceWork() bool {
	return js.mapsFinished() && js.redsLeft > 0
}

// Run replays the trace on the simulated cluster, returning aggregated
// metrics. The trace must be sorted (Generate and codecs guarantee it).
func Run(t *trace.Trace, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, errors.New("cluster: empty trace")
	}
	sim := newSimulator(t, cfg)
	return sim.run()
}

type simulator struct {
	cfg        Config
	tr         *trace.Trace
	rng        *rand.Rand
	events     eventHeap
	seq        int64
	mapFree    int
	redFree    int
	totalSlots int
	runnable   []*jobState // queue in arrival order
	rrCursor   int         // fair-share round-robin cursor
	// locality is non-nil for locality-aware runs (RunWithLocality) and
	// adds per-node map-slot accounting.
	locality *localityTracker
	// occupancy integration
	lastT     float64
	occupancy []float64 // per-hour busy-slot-seconds
	result    *Result
}

func newSimulator(t *trace.Trace, cfg Config) *simulator {
	mapSlots := cfg.Nodes * cfg.MapSlotsPerNode
	redSlots := cfg.Nodes * cfg.ReduceSlotsPerNode
	s := &simulator{
		cfg:        cfg,
		tr:         t,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		mapFree:    mapSlots,
		redFree:    redSlots,
		totalSlots: mapSlots + redSlots,
		result: &Result{
			Scheduler:  cfg.Scheduler,
			Jobs:       make(map[int64]JobMetrics, t.Len()),
			TotalSlots: mapSlots + redSlots,
		},
	}
	start := t.Meta.Start
	for _, j := range t.Jobs {
		js := &jobState{
			job:     j,
			arrival: j.SubmitTime.Sub(start).Seconds(),
		}
		s.initTasks(js)
		s.push(&event{at: js.arrival, kind: evArrival, job: js})
	}
	return s
}

// initTasks derives simulated task counts and durations, applying the
// MaxTasksPerJob coalescing.
func (s *simulator) initTasks(js *jobState) {
	j := js.job
	maps := j.MapTasks
	if maps < 1 {
		maps = 1
	}
	if maps > s.cfg.MaxTasksPerJob {
		maps = s.cfg.MaxTasksPerJob
	}
	js.mapsTotal = maps
	js.mapsLeft = maps
	if mt := float64(j.MapTime); mt > 0 {
		js.mapDur = mt / float64(maps)
	} else {
		js.mapDur = 1 // accounting granule for jobs with no recorded map time
	}
	reds := j.ReduceTasks
	if j.ReduceTime <= 0 && reds <= 0 {
		reds = 0
	} else if reds < 1 {
		reds = 1
	}
	if reds > s.cfg.MaxTasksPerJob {
		reds = s.cfg.MaxTasksPerJob
	}
	js.redsTotal = reds
	js.redsLeft = reds
	if reds > 0 {
		rt := float64(j.ReduceTime)
		if rt <= 0 {
			rt = float64(reds)
		}
		js.reduceDur = rt / float64(reds)
	}
}

func (s *simulator) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// accrue integrates slot occupancy from lastT to now into hourly buckets.
func (s *simulator) accrue(now float64) {
	busy := float64(s.totalSlots - s.mapFree - s.redFree)
	t := s.lastT
	for t < now {
		hour := int(t / 3600)
		hourEnd := float64(hour+1) * 3600
		seg := now
		if hourEnd < seg {
			seg = hourEnd
		}
		for hour >= len(s.occupancy) {
			s.occupancy = append(s.occupancy, 0)
		}
		s.occupancy[hour] += busy * (seg - t)
		t = seg
	}
	s.lastT = now
}

func (s *simulator) run() (*Result, error) {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		s.accrue(e.at)
		switch e.kind {
		case evArrival:
			s.runnable = append(s.runnable, e.job)
		case evMapDone:
			e.job.mapsRunning--
			e.job.mapsDone++
			s.mapFree++
			if s.locality != nil && e.node >= 0 {
				s.locality.release(e.node)
			}
		case evReduceDone:
			e.job.redsRunning--
			e.job.redsDone++
			s.redFree++
		}
		if e.kind != evArrival && e.job.done() {
			s.complete(e.job, e.at)
		}
		s.schedule(e.at)
	}
	// Finalize occupancy into hourly averages.
	res := s.result
	res.HourlyOccupancy = make([]float64, len(s.occupancy))
	for h, busySeconds := range s.occupancy {
		res.HourlyOccupancy[h] = busySeconds / 3600
	}
	res.MakespanSec = s.lastT
	res.Completed = len(res.Jobs)
	if res.Completed != s.tr.Len() {
		return nil, fmt.Errorf("cluster: %d of %d jobs completed", res.Completed, s.tr.Len())
	}
	return res, nil
}

func (s *simulator) complete(js *jobState, at float64) {
	s.result.Jobs[js.job.ID] = JobMetrics{
		ID:            js.job.ID,
		ArrivalSec:    js.arrival,
		FirstStartSec: js.firstStart,
		FinishSec:     at,
	}
	// Drop from the runnable queue.
	for i, q := range s.runnable {
		if q == js {
			s.runnable = append(s.runnable[:i], s.runnable[i+1:]...)
			if s.rrCursor > i {
				s.rrCursor--
			}
			break
		}
	}
}

// schedule assigns free slots to pending tasks per the discipline.
func (s *simulator) schedule(now float64) {
	if len(s.runnable) == 0 {
		return
	}
	switch s.cfg.Scheduler {
	case FIFO:
		s.scheduleFIFO(now)
	case Fair:
		s.scheduleFair(now)
	}
}

// scheduleFIFO drains jobs in arrival order.
func (s *simulator) scheduleFIFO(now float64) {
	for _, js := range s.runnable {
		if s.mapFree == 0 && s.redFree == 0 {
			return
		}
		for s.mapFree > 0 && js.pendingMapWork() {
			s.startMap(js, now)
		}
		for s.redFree > 0 && js.pendingReduceWork() {
			s.startReduce(js, now)
		}
	}
}

// scheduleFair hands one task at a time to each runnable job, cycling
// until no slot or no task remains.
func (s *simulator) scheduleFair(now float64) {
	n := len(s.runnable)
	if n == 0 {
		return
	}
	idle := 0
	for (s.mapFree > 0 || s.redFree > 0) && idle < n {
		if s.rrCursor >= len(s.runnable) {
			s.rrCursor = 0
		}
		js := s.runnable[s.rrCursor]
		progressed := false
		if s.mapFree > 0 && js.pendingMapWork() {
			s.startMap(js, now)
			progressed = true
		} else if s.redFree > 0 && js.pendingReduceWork() {
			s.startReduce(js, now)
			progressed = true
		}
		if progressed {
			idle = 0
		} else {
			idle++
		}
		s.rrCursor++
		if s.rrCursor >= len(s.runnable) {
			s.rrCursor = 0
		}
		n = len(s.runnable)
	}
}

func (s *simulator) startMap(js *jobState, now float64) {
	js.mapsLeft--
	js.mapsRunning++
	s.mapFree--
	node := -1
	if s.locality != nil {
		node = s.locality.place(js)
	}
	s.markStarted(js, now)
	s.push(&event{at: now + s.taskDuration(js.mapDur), kind: evMapDone, job: js, node: node})
}

func (s *simulator) startReduce(js *jobState, now float64) {
	js.redsLeft--
	js.redsRunning++
	s.redFree--
	s.markStarted(js, now)
	s.push(&event{at: now + s.taskDuration(js.reduceDur), kind: evReduceDone, job: js, node: -1})
}

func (s *simulator) markStarted(js *jobState, now float64) {
	if !js.started {
		js.started = true
		js.firstStart = now
	}
}

// taskDuration applies straggler injection.
func (s *simulator) taskDuration(base float64) float64 {
	if base <= 0 {
		base = 0.001
	}
	if s.cfg.StragglerProb > 0 && s.rng.Float64() < s.cfg.StragglerProb {
		return base * s.cfg.StragglerFactor
	}
	return base
}
