package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/trace"
	"repro/internal/units"
)

// TestOccupancyConservation asserts the simulator's fundamental invariant:
// without stragglers, the integral of slot occupancy over time equals the
// total task-time of the workload — no compute is created or destroyed by
// scheduling, queueing, or task coalescing.
func TestOccupancyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		start := time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC)
		tr := trace.New(trace.Meta{Name: "rand", Machines: 4, Start: start, Length: 12 * time.Hour})
		n := 5 + rng.Intn(40)
		var wantTaskSeconds float64
		for i := 0; i < n; i++ {
			mapTasks := 1 + rng.Intn(20)
			mapTime := float64(1+rng.Intn(5000)) / 10 * float64(mapTasks)
			redTasks := rng.Intn(4)
			redTime := 0.0
			if redTasks > 0 {
				redTime = float64(1+rng.Intn(3000)) / 10 * float64(redTasks)
			}
			j := &trace.Job{
				ID:          int64(i + 1),
				SubmitTime:  start.Add(time.Duration(rng.Intn(4*3600)) * time.Second),
				Duration:    time.Minute,
				InputBytes:  units.Bytes(rng.Intn(1e9)),
				MapTasks:    mapTasks,
				MapTime:     units.TaskSeconds(mapTime),
				ReduceTasks: redTasks,
				ReduceTime:  units.TaskSeconds(redTime),
			}
			wantTaskSeconds += mapTime + redTime
			tr.Add(j)
		}
		tr.Sort()

		for _, sched := range []SchedulerKind{FIFO, Fair} {
			res, err := Run(tr, Config{
				Nodes:              2,
				MapSlotsPerNode:    3,
				ReduceSlotsPerNode: 2,
				Scheduler:          sched,
				MaxTasksPerJob:     7, // force coalescing paths
				Seed:               seed,
			})
			if err != nil {
				return false
			}
			var got float64
			for _, o := range res.HourlyOccupancy {
				got += o * 3600
			}
			// Tolerance: jobs with zero recorded map time get a 1-second
			// accounting granule per task.
			if math.Abs(got-wantTaskSeconds) > wantTaskSeconds*0.01+float64(n)*10 {
				return false
			}
			if res.Completed != tr.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLatencyLowerBound: a job can never finish faster than its critical
// path (one map wave + one reduce wave) even on an idle cluster.
func TestLatencyLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		start := time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC)
		tr := trace.New(trace.Meta{Name: "lb", Machines: 100, Start: start, Length: time.Hour})
		mapTasks := 1 + rng.Intn(10)
		mapTime := float64(10+rng.Intn(1000)) * float64(mapTasks)
		redTasks := 1 + rng.Intn(5)
		redTime := float64(10+rng.Intn(500)) * float64(redTasks)
		tr.Add(&trace.Job{
			ID: 1, SubmitTime: start, Duration: time.Minute,
			MapTasks: mapTasks, MapTime: units.TaskSeconds(mapTime),
			ReduceTasks: redTasks, ReduceTime: units.TaskSeconds(redTime),
		})
		res, err := Run(tr, Config{Nodes: 100, Seed: seed})
		if err != nil {
			return false
		}
		// Critical path: one map task duration + one reduce task duration
		// (plenty of slots, single wave each).
		perMap := mapTime / float64(mapTasks)
		perRed := redTime / float64(redTasks)
		lat := res.Jobs[1].Latency()
		return lat >= perMap+perRed-1e-6 && lat <= perMap+perRed+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNoIdleWithPendingWork: whenever tasks are pending and slots free,
// the scheduler must assign — verified indirectly: a saturating workload
// keeps occupancy at capacity until it drains.
func TestNoIdleWithPendingWork(t *testing.T) {
	start := time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC)
	tr := trace.New(trace.Meta{Name: "sat", Machines: 1, Start: start, Length: time.Hour})
	// 10 jobs x 4 map tasks x 900s each = 36000 task-seconds on 2 map
	// slots => 5 busy hours on the map side.
	for i := int64(1); i <= 10; i++ {
		tr.Add(&trace.Job{
			ID: i, SubmitTime: start, Duration: time.Minute,
			MapTasks: 4, MapTime: units.TaskSeconds(3600),
		})
	}
	res, err := Run(tr, Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Scheduler: Fair})
	if err != nil {
		t.Fatal(err)
	}
	// First 4 hours: both map slots continuously busy.
	for h := 0; h < 4; h++ {
		if math.Abs(res.HourlyOccupancy[h]-2) > 1e-9 {
			t.Errorf("hour %d occupancy = %v, want 2 (saturated)", h, res.HourlyOccupancy[h])
		}
	}
}
