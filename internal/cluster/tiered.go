package cluster

import (
	"errors"

	"repro/internal/trace"
	"repro/internal/units"
)

// TieredConfig implements the §6.2 recommendation directly: "the cluster
// should be split into two tiers ... (1) a performance tier, which handles
// the interactive and semi-streaming computations ... and (2) a capacity
// tier, which necessarily trades performance for efficiency". Jobs whose
// total data is below SmallJobThreshold run on the performance partition;
// everything else runs on the capacity partition. Each partition schedules
// independently (fair on the performance tier, FIFO batch semantics on the
// capacity tier), so a monster batch job can never head-of-line-block the
// >90% population of small interactive jobs.
type TieredConfig struct {
	// Nodes is the total cluster size; PerformanceShare in (0,1) is the
	// fraction of nodes assigned to the performance tier.
	Nodes            int
	PerformanceShare float64
	// MapSlotsPerNode / ReduceSlotsPerNode as in Config (defaults 6/4).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// SmallJobThreshold routes jobs: total bytes below it go to the
	// performance tier (default 10 GB, the paper's small-job boundary).
	SmallJobThreshold units.Bytes
	// Straggler injection, applied to both tiers.
	StragglerProb   float64
	StragglerFactor float64
	// MaxTasksPerJob coalescing (see Config).
	MaxTasksPerJob int
	// Seed drives straggler draws.
	Seed int64
}

// TieredResult reports a two-tier replay.
type TieredResult struct {
	// Performance and Capacity are the per-tier replay results.
	Performance *Result
	Capacity    *Result
	// SmallJobs / LargeJobs count the routing decision.
	SmallJobs, LargeJobs int
}

// MeanSmallLatency is the performance tier's mean latency — the metric the
// tier exists to protect.
func (r *TieredResult) MeanSmallLatency() float64 { return r.Performance.MeanLatency() }

// P99SmallLatency is the performance tier's tail latency.
func (r *TieredResult) P99SmallLatency() float64 { return r.Performance.P99Latency() }

// RunTiered replays a trace on the two-tier cluster.
func RunTiered(t *trace.Trace, cfg TieredConfig) (*TieredResult, error) {
	if cfg.Nodes < 2 {
		return nil, errors.New("cluster: tiered cluster needs at least 2 nodes")
	}
	if cfg.PerformanceShare <= 0 || cfg.PerformanceShare >= 1 {
		return nil, errors.New("cluster: performance share must be in (0,1)")
	}
	if cfg.SmallJobThreshold == 0 {
		cfg.SmallJobThreshold = 10 * units.GB
	}
	if cfg.SmallJobThreshold < 0 {
		return nil, errors.New("cluster: negative small-job threshold")
	}
	perfNodes := int(float64(cfg.Nodes) * cfg.PerformanceShare)
	if perfNodes < 1 {
		perfNodes = 1
	}
	capNodes := cfg.Nodes - perfNodes
	if capNodes < 1 {
		capNodes = 1
		perfNodes = cfg.Nodes - 1
	}

	small := t.Filter(func(j *trace.Job) bool { return j.TotalBytes() < cfg.SmallJobThreshold })
	large := t.Filter(func(j *trace.Job) bool { return j.TotalBytes() >= cfg.SmallJobThreshold })

	res := &TieredResult{SmallJobs: small.Len(), LargeJobs: large.Len()}
	if small.Len() == 0 || large.Len() == 0 {
		return nil, errors.New("cluster: threshold routes all jobs to one tier; use Run instead")
	}
	perfRes, err := Run(small, Config{
		Nodes:              perfNodes,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		Scheduler:          Fair,
		StragglerProb:      cfg.StragglerProb,
		StragglerFactor:    cfg.StragglerFactor,
		MaxTasksPerJob:     cfg.MaxTasksPerJob,
		Seed:               cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	capRes, err := Run(large, Config{
		Nodes:              capNodes,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
		Scheduler:          FIFO,
		StragglerProb:      cfg.StragglerProb,
		StragglerFactor:    cfg.StragglerFactor,
		MaxTasksPerJob:     cfg.MaxTasksPerJob,
		Seed:               cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	res.Performance = perfRes
	res.Capacity = capRes
	return res, nil
}
