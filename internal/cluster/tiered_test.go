package cluster

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

func ccbTrace(t *testing.T, dur time.Duration) *trace.Trace {
	t.Helper()
	p, err := profile.ByName("CC-b")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(gen.Config{Profile: p, Seed: 9, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunTieredValidation(t *testing.T) {
	tr := ccbTrace(t, 6*time.Hour)
	cases := []TieredConfig{
		{Nodes: 1, PerformanceShare: 0.5},
		{Nodes: 10, PerformanceShare: 0},
		{Nodes: 10, PerformanceShare: 1},
		{Nodes: 10, PerformanceShare: 0.5, SmallJobThreshold: -1},
	}
	for i, cfg := range cases {
		if _, err := RunTiered(tr, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunTieredRouting(t *testing.T) {
	tr := ccbTrace(t, 24*time.Hour)
	res, err := RunTiered(tr, TieredConfig{
		Nodes:            100,
		PerformanceShare: 0.3,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallJobs+res.LargeJobs != tr.Len() {
		t.Errorf("routing lost jobs: %d + %d != %d", res.SmallJobs, res.LargeJobs, tr.Len())
	}
	// CC-b is dominated by tiny jobs (~90% below 10 GB).
	if res.SmallJobs < res.LargeJobs*5 {
		t.Errorf("small/large = %d/%d; expected small-job dominance", res.SmallJobs, res.LargeJobs)
	}
	if res.Performance.Completed != res.SmallJobs || res.Capacity.Completed != res.LargeJobs {
		t.Error("per-tier completion mismatch")
	}
}

func TestTieredProtectsSmallJobs(t *testing.T) {
	// On a small shared cluster, big CC-b jobs inflate small-job latency;
	// carving out even a modest performance tier should keep small-job
	// p99 far below the shared-FIFO p99 of the same jobs.
	tr := ccbTrace(t, 24*time.Hour)

	shared, err := Run(tr, Config{Nodes: 40, Scheduler: FIFO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := RunTiered(tr, TieredConfig{
		Nodes:            40,
		PerformanceShare: 0.25,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Small-job p99 under the tiered cluster vs the same jobs' p99 under
	// the shared cluster.
	sharedSmallP99 := p99Of(shared, tr, func(j *trace.Job) bool {
		return j.TotalBytes() < 10*units.GB
	})
	tieredSmallP99 := tiered.P99SmallLatency()
	if tieredSmallP99 >= sharedSmallP99 {
		t.Errorf("tiered small-job p99 %v should beat shared FIFO %v",
			tieredSmallP99, sharedSmallP99)
	}
}

// p99Of extracts the p99 latency of the subset of jobs matching keep.
func p99Of(res *Result, tr *trace.Trace, keep func(*trace.Job) bool) float64 {
	var lats []float64
	for _, j := range tr.Jobs {
		if m, ok := res.Jobs[j.ID]; ok && keep(j) {
			lats = append(lats, m.Latency())
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sortFloat64s(lats)
	return lats[int(0.99*float64(len(lats)-1))]
}

func TestTieredSingleClassErrors(t *testing.T) {
	// All-small trace: threshold routes everything to one tier.
	tr := trace.New(trace.Meta{Name: "small-only", Machines: 10,
		Start: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC), Length: time.Hour})
	for i := int64(1); i <= 10; i++ {
		tr.Add(&trace.Job{
			ID: i, SubmitTime: tr.Meta.Start.Add(time.Duration(i) * time.Minute),
			Duration: time.Minute, InputBytes: units.MB, MapTasks: 1, MapTime: 10,
		})
	}
	if _, err := RunTiered(tr, TieredConfig{Nodes: 10, PerformanceShare: 0.5}); err == nil {
		t.Error("single-class trace should error")
	}
}
