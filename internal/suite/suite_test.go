package suite

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

// fastCfg keeps suite tests quick: two contrasting workloads, short
// windows.
func fastCfg() Config {
	return Config{
		Workloads:    []string{"CC-b", "CC-e"},
		SourceWindow: 48 * time.Hour,
		StreamLength: 12 * time.Hour,
		TargetNodes:  30,
		Seed:         5,
	}
}

func TestRunSuite(t *testing.T) {
	res, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 2 {
		t.Fatalf("scores = %d, want 2", len(res.Scores))
	}
	for _, s := range res.Scores {
		if s.Jobs == 0 {
			t.Errorf("%s: no jobs replayed", s.Workload)
		}
		if s.SmallP50 <= 0 || s.SmallP99 < s.SmallP50 {
			t.Errorf("%s: small-job latencies malformed: p50=%v p99=%v",
				s.Workload, s.SmallP50, s.SmallP99)
		}
		if s.MeanUtilization < 0 || s.MeanUtilization > 1 {
			t.Errorf("%s: utilization %v out of [0,1]", s.Workload, s.MeanUtilization)
		}
		if s.BytesPerHour <= 0 {
			t.Errorf("%s: no throughput", s.Workload)
		}
		// Scaled streams must stay faithful to their sources.
		if s.Fidelity.WorstExcess() > 0.08 {
			t.Errorf("%s: scaled stream distorted: %v", s.Workload, s.Fidelity)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if a.Scores[i].SmallP99 != b.Scores[i].SmallP99 ||
			a.Scores[i].Jobs != b.Scores[i].Jobs {
			t.Fatal("same seed should reproduce the suite exactly")
		}
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	cfg := fastCfg()
	cfg.Workloads = []string{"nope"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestSuiteDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if len(cfg.Workloads) != 7 {
		t.Errorf("default workloads = %v", cfg.Workloads)
	}
	if cfg.TargetNodes != 50 || cfg.SlotsPerNode != 10 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestCompareSchedulers(t *testing.T) {
	cfg := fastCfg()
	cfg.Workloads = []string{"CC-b"}
	cfg.TargetNodes = 10 // small cluster so scheduling pressure exists
	ratios, err := CompareSchedulers(cfg, cluster.FIFO, cluster.Fair)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := ratios["CC-b"]
	if !ok {
		t.Fatal("missing CC-b ratio")
	}
	// FIFO should never make small jobs *faster* than fair by much; under
	// contention fair wins (ratio >= 1 within tolerance).
	if r < 0.8 {
		t.Errorf("FIFO/fair small-job p99 ratio = %v; fair should not lose badly", r)
	}
}
