// Package suite implements the benchmark design §7 of the paper argues
// for: because no single workload is representative, a big-data benchmark
// must be a *workload suite* — a set of workload classes covering the
// observed range of behavior, each replayed as a steady processing stream,
// scored with multiple performance metrics rather than a single
// jobs-per-second number.
//
// A Suite pairs each calibrated workload with a scaled-down synthetic
// stream (via internal/synth) and replays it on a simulated cluster under
// a chosen configuration, producing a scorecard per workload: latency
// percentiles for the small interactive population and the large batch
// population separately, sustained utilization, and throughput. Systems or
// configurations are compared by running the same suite against each.
package suite

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/units"
)

// Config describes one suite run.
type Config struct {
	// Workloads to include (default: all seven).
	Workloads []string
	// SourceWindow is how much of each workload to generate before
	// scale-down (default 7 days).
	SourceWindow time.Duration
	// StreamLength is the replayed stream duration after scale-down
	// (default 24h).
	StreamLength time.Duration
	// TargetNodes sizes the benchmarked cluster; each workload's data and
	// compute are scaled from its home cluster size to TargetNodes
	// (default 50).
	TargetNodes int
	// Scheduler under test.
	Scheduler cluster.SchedulerKind
	// SlotsPerNode splits evenly between map and reduce slots (default 10).
	SlotsPerNode int
	// SmallJobThreshold separates the interactive population in scoring
	// (default 10 GB, the paper's small-job boundary — scaled along with
	// the data so the classification is invariant).
	SmallJobThreshold units.Bytes
	// Seed drives generation, sampling, and replay.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		c.Workloads = profile.Names()
	}
	if c.SourceWindow == 0 {
		c.SourceWindow = 7 * 24 * time.Hour
	}
	if c.StreamLength == 0 {
		c.StreamLength = 24 * time.Hour
	}
	if c.TargetNodes == 0 {
		c.TargetNodes = 50
	}
	if c.SlotsPerNode == 0 {
		c.SlotsPerNode = 10
	}
	if c.SmallJobThreshold == 0 {
		c.SmallJobThreshold = 10 * units.GB
	}
	return c
}

// Score is the multi-metric result for one workload in the suite.
type Score struct {
	Workload string
	// Jobs replayed.
	Jobs int
	// SmallP50/SmallP99: latency (seconds) of the interactive population.
	SmallP50, SmallP99 float64
	// LargeP50/LargeP99: latency of the batch population (0 when the
	// scaled stream contains none).
	LargeP50, LargeP99 float64
	// MeanUtilization is the average busy-slot share over the stream.
	MeanUtilization float64
	// BytesPerHour is sustained data throughput.
	BytesPerHour units.Bytes
	// Fidelity of the scaled stream against its source.
	Fidelity synth.Fidelity
}

// Result is a full suite scorecard.
type Result struct {
	Config Config
	Scores []Score
}

// Run executes the suite.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg}
	for _, name := range cfg.Workloads {
		s, err := runOne(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("suite: %s: %w", name, err)
		}
		res.Scores = append(res.Scores, s)
	}
	return res, nil
}

func runOne(cfg Config, name string) (Score, error) {
	p, err := profile.ByName(name)
	if err != nil {
		return Score{}, err
	}
	src, err := gen.Generate(gen.Config{Profile: p, Seed: cfg.Seed, Duration: cfg.SourceWindow})
	if err != nil {
		return Score{}, err
	}
	syn, err := synth.Synthesize(src, synth.Config{
		TargetLength:   cfg.StreamLength,
		SourceMachines: p.Machines,
		TargetMachines: cfg.TargetNodes,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return Score{}, err
	}
	if syn.Len() == 0 {
		return Score{}, errors.New("scaled stream is empty")
	}
	fid, err := synth.Compare(src, syn)
	if err != nil {
		return Score{}, err
	}
	rep, err := cluster.Run(syn, cluster.Config{
		Nodes:              cfg.TargetNodes,
		MapSlotsPerNode:    cfg.SlotsPerNode - cfg.SlotsPerNode/2,
		ReduceSlotsPerNode: cfg.SlotsPerNode / 2,
		Scheduler:          cfg.Scheduler,
		Seed:               cfg.Seed,
	})
	if err != nil {
		return Score{}, err
	}

	// The small-job boundary scales with the data.
	scale := float64(cfg.TargetNodes) / float64(p.Machines)
	threshold := units.Bytes(float64(cfg.SmallJobThreshold) * scale)

	score := Score{Workload: name, Jobs: syn.Len(), Fidelity: fid}
	var smallLats, largeLats []float64
	for _, j := range syn.Jobs {
		m, ok := rep.Jobs[j.ID]
		if !ok {
			continue
		}
		if j.TotalBytes() < threshold {
			smallLats = append(smallLats, m.Latency())
		} else {
			largeLats = append(largeLats, m.Latency())
		}
	}
	score.SmallP50, score.SmallP99 = percentiles(smallLats)
	score.LargeP50, score.LargeP99 = percentiles(largeLats)

	var occSum float64
	for _, o := range rep.HourlyOccupancy {
		occSum += o
	}
	if len(rep.HourlyOccupancy) > 0 && rep.TotalSlots > 0 {
		score.MeanUtilization = occSum / float64(len(rep.HourlyOccupancy)) / float64(rep.TotalSlots)
	}
	sum := syn.Summarize()
	hours := cfg.StreamLength.Hours()
	if hours > 0 {
		score.BytesPerHour = units.Bytes(float64(sum.BytesMoved) / hours)
	}
	return score, nil
}

// percentiles returns (p50, p99) of latencies; zeros when empty.
func percentiles(lats []float64) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Float64s(lats)
	return lats[len(lats)/2], lats[int(0.99*float64(len(lats)-1))]
}

// CompareSchedulers runs the same suite under two schedulers and returns
// the per-workload p99 ratio for the small-job population — the headline
// comparison §6.2 motivates.
func CompareSchedulers(cfg Config, a, b cluster.SchedulerKind) (map[string]float64, error) {
	cfg = cfg.withDefaults()
	cfgA := cfg
	cfgA.Scheduler = a
	resA, err := Run(cfgA)
	if err != nil {
		return nil, err
	}
	cfgB := cfg
	cfgB.Scheduler = b
	resB, err := Run(cfgB)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(resA.Scores))
	for i, sa := range resA.Scores {
		sb := resB.Scores[i]
		if sb.SmallP99 > 0 {
			out[sa.Workload] = sa.SmallP99 / sb.SmallP99
		}
	}
	return out, nil
}
