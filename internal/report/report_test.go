package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Trace", "Jobs", "Bytes")
	tb.AddRow("CC-a", "5759", "80 TB")
	tb.AddRow("FB-2010", "1169184", "1.5 EB")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Trace") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[3], "1.5 EB") {
		t.Errorf("row line = %q", lines[3])
	}
	// Columns aligned: "Jobs" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "Jobs")
	if !strings.HasPrefix(lines[2][idx:], "5759") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("A", "B")
	tb.AddRow("only")
	tb.AddRow("x", "y", "overflow-dropped")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "overflow") {
		t.Error("overflow cell should be dropped")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("A", "B")
	tb.AddRowf("%d\t%.2f", 42, 3.14159)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "42") || !strings.Contains(buf.String(), "3.14") {
		t.Errorf("AddRowf output missing values:\n%s", buf.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Error("empty series should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline runes = %d, want 4", len([]rune(s)))
	}
	rs := []rune(s)
	if rs[0] != '▁' || rs[3] != '█' {
		t.Errorf("sparkline = %q, want min..max blocks", s)
	}
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render lowest block, got %q", string(flat))
		}
	}
}

func TestCDFChart(t *testing.T) {
	c := stats.NewCDF([]float64{1, 10, 100, 1000})
	var buf bytes.Buffer
	if err := CDFChart(&buf, c, "sizes", nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sizes:") || !strings.Contains(out, "p50") {
		t.Errorf("chart missing pieces:\n%s", out)
	}
	var empty bytes.Buffer
	if err := CDFChart(&empty, stats.NewCDF(nil), "none", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "(empty)") {
		t.Error("empty CDF should render placeholder")
	}
}

func TestLogLogChart(t *testing.T) {
	freqs := make([]uint64, 1000)
	for i := range freqs {
		freqs[i] = uint64(1000 / (i + 1))
	}
	var buf bytes.Buffer
	if err := LogLogChart(&buf, freqs, "access"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rank 1 ", "rank 10 ", "rank 100 ", "rank 1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	var empty bytes.Buffer
	if err := LogLogChart(&empty, nil, "x"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "(empty)") {
		t.Error("empty chart should render placeholder")
	}
}

func TestPercentAndRatio(t *testing.T) {
	if got := Percent(0.785); got != "78.5%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Ratio(31.2); got != "31:1" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(math.Inf(1)); got != "n/a" {
		t.Errorf("Ratio(Inf) = %q", got)
	}
	if got := Ratio(math.NaN()); got != "n/a" {
		t.Errorf("Ratio(NaN) = %q", got)
	}
}
