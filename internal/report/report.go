// Package report renders analysis results as aligned text tables, compact
// ASCII charts, and CSV — the output layer of cmd/swimanalyze and
// cmd/swimbench. Every figure and table regenerated from the paper is
// ultimately printed through this package so runs are inspectable without
// plotting tools.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "\t")
	t.AddRow(parts...)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sparkline renders a series as a one-line unicode mini-chart, useful for
// the weekly time-series views (Figure 7).
func Sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// CDFChart renders an empirical distribution (exact CDF or streaming
// sketch) as rows of "x-value  bar  p", sampled at fixed probabilities.
func CDFChart(w io.Writer, c stats.Distribution, label string, format func(float64) string) error {
	if c.Len() == 0 {
		_, err := fmt.Fprintf(w, "%s: (empty)\n", label)
		return err
	}
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	if _, err := fmt.Fprintf(w, "%s:\n", label); err != nil {
		return err
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := c.Quantile(q)
		bar := strings.Repeat("#", int(q*40))
		if _, err := fmt.Fprintf(w, "  p%02.0f %12s |%-40s|\n", q*100, format(v), bar); err != nil {
			return err
		}
	}
	return nil
}

// LogLogChart renders rank-frequency points (Figure 2 style) as a compact
// table of decade markers.
func LogLogChart(w io.Writer, freqs []uint64, label string) error {
	if len(freqs) == 0 {
		_, err := fmt.Fprintf(w, "%s: (empty)\n", label)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s (rank -> frequency):\n", label); err != nil {
		return err
	}
	for rank := 1; rank <= len(freqs); rank *= 10 {
		if _, err := fmt.Fprintf(w, "  rank %-8d freq %d\n", rank, freqs[rank-1]); err != nil {
			return err
		}
	}
	return nil
}

// Percent formats a fraction as "12.3%".
func Percent(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

// Ratio formats a burstiness ratio as "31:1".
func Ratio(r float64) string {
	if math.IsInf(r, 0) || math.IsNaN(r) {
		return "n/a"
	}
	return fmt.Sprintf("%.0f:1", r)
}
