// Package binenc is the small binary wire kit behind the durable
// snapshot formats (core.Partial on disk). Writers append to a byte
// slice with the Append* functions; readers decode through a Reader
// with one sticky error, so decode code stays a straight line of typed
// reads followed by a single Err() check.
//
// The encoding is deliberately dumb: uvarint/zigzag-varint integers,
// fixed 8-byte little-endian IEEE-754 floats (bit-exact round-trips —
// the exact-sum accumulators depend on it), and length-prefixed byte
// strings. Versioning, magic numbers, and checksums belong to the
// formats built on top, not here.
package binenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v as a zigzag varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendFloat64 appends the 8-byte little-endian IEEE-754 bits of f.
// Every float64 value round-trips bit-for-bit, including negative zero
// (NaN payloads too, though the analyses never store them).
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendUint64 appends v as fixed 8-byte little-endian. Wide values
// (byte counts, nanosecond durations) cost 5-10 varint bytes and a
// data-dependent decode loop; fixed width trades at most three bytes
// for a single-load decode in scan-critical columns.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendUint32 appends v as fixed 4-byte little-endian, for values a
// format bounds below 2^32 (sub-second nanoseconds) whose distribution
// is uniform enough that varints average wider than four bytes.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendString appends a uvarint length prefix followed by the raw
// bytes of s.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Reader decodes a byte slice written with the Append* functions. The
// first malformed read latches an error; every subsequent read returns
// a zero value, so callers check Err() once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The slice is not copied; the
// caller must not mutate it while decoding.
func NewReader(b []byte) *Reader {
	return &Reader{b: b}
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("binenc: offset %d: %s", r.off, fmt.Sprintf(format, args...))
	}
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or oversized uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or oversized varint")
		return 0
	}
	r.off += n
	return v
}

// Float64 decodes a fixed 8-byte little-endian float.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Uint64 decodes a fixed 8-byte little-endian unsigned integer.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("truncated uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Uint32 decodes a fixed 4-byte little-endian unsigned integer.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail("truncated uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// String decodes a length-prefixed string. The length is validated
// against the remaining input before allocating, so a corrupt prefix
// cannot demand an absurd allocation.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.fail("string length %d exceeds remaining %d bytes", n, r.Remaining())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bool decodes one byte as a boolean; any value other than 0 or 1 is
// malformed (it would mean the stream is misaligned).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail("truncated bool")
		return false
	}
	c := r.b[r.off]
	if c > 1 {
		r.fail("invalid bool byte 0x%02x", c)
		return false
	}
	r.off++
	return c == 1
}

// Count decodes a uvarint that callers will use as an element count for
// a slice of elemSize-byte-minimum elements, validating it against the
// remaining input so corrupt counts fail instead of allocating.
func (r *Reader) Count(elemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(r.Remaining()/elemSize) {
		r.fail("count %d exceeds remaining input (%d bytes, >=%d each)", n, r.Remaining(), elemSize)
		return 0
	}
	return int(n)
}
