package binenc

import (
	"testing"
)

// FuzzBinenc drives the sticky-error Reader with an arbitrary byte
// stream interpreted as an op program: the first bytes choose which
// typed reads to issue, the rest is the input being decoded. The
// invariants under fuzz:
//
//   - no read ever panics, whatever the input;
//   - once Err() is non-nil it stays non-nil and every later read
//     returns the zero value;
//   - reads never consume past the input (Remaining() is monotone
//     non-increasing and never negative);
//   - Count(elemSize) never returns a count the remaining input could
//     not possibly hold — the allocation bound corrupt colseg and
//     partial snapshots rely on.
func FuzzBinenc(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6}, AppendString(AppendVarint(AppendUvarint(nil, 300), -7), "hi"))
	f.Add([]byte{2, 2, 2}, AppendFloat64(AppendBool(nil, true), 3.5))
	f.Add([]byte{6, 6}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02})
	f.Add([]byte{3}, []byte{0xfe})

	f.Fuzz(func(t *testing.T, ops, data []byte) {
		r := NewReader(data)
		if r.Remaining() != len(data) {
			t.Fatalf("fresh reader has %d remaining, want %d", r.Remaining(), len(data))
		}
		prevRemaining := r.Remaining()
		errSeen := false
		for _, op := range ops {
			hadErr := errSeen
			var zero bool
			switch op % 9 {
			case 0:
				zero = r.Uvarint() == 0
			case 1:
				zero = r.Varint() == 0
			case 2:
				zero = r.Float64() == 0
			case 3:
				zero = r.String() == ""
			case 4:
				zero = !r.Bool()
			case 5:
				zero = r.Count(1) == 0
			case 6:
				n := r.Count(8)
				zero = n == 0
				if r.Err() == nil && n > r.Remaining()/8 {
					t.Fatalf("Count(8) returned %d with only %d bytes remaining", n, r.Remaining())
				}
			case 7:
				zero = r.Uint64() == 0
			case 8:
				zero = r.Uint32() == 0
			}
			if errSeen {
				if r.Err() == nil {
					t.Fatal("sticky error cleared itself")
				}
				if !zero {
					t.Fatalf("op %d returned non-zero after error %v", op%9, r.Err())
				}
			}
			if r.Err() != nil {
				errSeen = true
			}
			rem := r.Remaining()
			if rem < 0 || rem > prevRemaining {
				t.Fatalf("Remaining went from %d to %d", prevRemaining, rem)
			}
			if hadErr && rem != prevRemaining {
				t.Fatalf("failed read still consumed input (%d -> %d)", prevRemaining, rem)
			}
			prevRemaining = rem
		}
	})
}
