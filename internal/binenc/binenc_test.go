package binenc

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1234567)
	b = AppendVarint(b, math.MinInt64)
	b = AppendFloat64(b, 0)
	b = AppendFloat64(b, math.Copysign(0, -1))
	b = AppendFloat64(b, 1e-300)
	b = AppendFloat64(b, -math.MaxFloat64)
	b = AppendString(b, "")
	b = AppendString(b, "héllo\x00world")
	b = AppendBool(b, true)
	b = AppendBool(b, false)

	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Errorf("uvarint 0: %d", v)
	}
	if v := r.Uvarint(); v != math.MaxUint64 {
		t.Errorf("uvarint max: %d", v)
	}
	if v := r.Varint(); v != -1234567 {
		t.Errorf("varint: %d", v)
	}
	if v := r.Varint(); v != math.MinInt64 {
		t.Errorf("varint min: %d", v)
	}
	if v := r.Float64(); v != 0 || math.Signbit(v) {
		t.Errorf("float 0: %v", v)
	}
	if v := r.Float64(); v != 0 || !math.Signbit(v) {
		t.Errorf("float -0: %v signbit=%v", v, math.Signbit(v))
	}
	if v := r.Float64(); v != 1e-300 {
		t.Errorf("float small: %v", v)
	}
	if v := r.Float64(); v != -math.MaxFloat64 {
		t.Errorf("float large: %v", v)
	}
	if v := r.String(); v != "" {
		t.Errorf("empty string: %q", v)
	}
	if v := r.String(); v != "héllo\x00world" {
		t.Errorf("string: %q", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools did not round-trip")
	}
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	// A truncated float latches an error; later reads stay zero and the
	// error is the first one.
	r := NewReader([]byte{1, 2, 3})
	if v := r.Float64(); v != 0 {
		t.Errorf("truncated float returned %v", v)
	}
	first := r.Err()
	if first == nil {
		t.Fatal("no error on truncated float")
	}
	if v := r.Uvarint(); v != 0 {
		t.Errorf("read after error returned %d", v)
	}
	if r.Err() != first {
		t.Error("error was overwritten")
	}
}

func TestStringLengthGuard(t *testing.T) {
	// Length prefix claims 1000 bytes but only 2 remain.
	b := AppendUvarint(nil, 1000)
	b = append(b, 'h', 'i')
	r := NewReader(b)
	if s := r.String(); s != "" || r.Err() == nil {
		t.Errorf("oversized string prefix accepted: %q err=%v", s, r.Err())
	}
}

func TestCountGuard(t *testing.T) {
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(b)
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Errorf("absurd count accepted: %d err=%v", n, r.Err())
	}

	b = AppendUvarint(nil, 2)
	b = AppendFloat64(b, 1)
	b = AppendFloat64(b, 2)
	r = NewReader(b)
	if n := r.Count(8); n != 2 || r.Err() != nil {
		t.Errorf("valid count rejected: %d err=%v", n, r.Err())
	}
}

func TestInvalidBool(t *testing.T) {
	r := NewReader([]byte{7})
	if r.Bool() || r.Err() == nil {
		t.Error("bool byte 7 accepted")
	}
}
