package gen

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/profile"
	"repro/internal/units"
)

// TestGeneratorInvariantsQuick asserts structural invariants over random
// seeds and workloads: every generated trace validates, jobs stay inside
// the window, map-only jobs are internally consistent, task counts are
// sane, and per-job dimensions are non-negative.
func TestGeneratorInvariantsQuick(t *testing.T) {
	names := profile.Names()
	f := func(seedRaw int64, wlRaw uint8) bool {
		name := names[int(wlRaw)%len(names)]
		p, err := profile.ByName(name)
		if err != nil {
			return false
		}
		tr, err := Generate(Config{Profile: p, Seed: seedRaw, Duration: 6 * time.Hour})
		if err != nil {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		end := p.TraceStart.Add(6 * time.Hour)
		for _, j := range tr.Jobs {
			if j.SubmitTime.Before(p.TraceStart) || j.SubmitTime.After(end) {
				return false
			}
			if j.InputBytes < 0 || j.ShuffleBytes < 0 || j.OutputBytes < 0 {
				return false
			}
			if j.MapTasks < 1 {
				return false
			}
			if j.MapOnly() && (j.ReduceTasks != 0 || j.ShuffleBytes != 0 || j.ReduceTime != 0) {
				return false
			}
			if (j.ReduceTime > 0 || j.ShuffleBytes > 0) && j.ReduceTasks < 1 {
				return false
			}
			if j.Duration <= 0 {
				return false
			}
			// Field availability must follow the profile.
			if !p.HasInputPaths && j.InputPath != "" {
				return false
			}
			if !p.HasOutputPaths && j.OutputPath != "" {
				return false
			}
			if !p.HasNames && j.Name != "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRateScaleMonotonicQuick: higher rate scales never produce fewer
// jobs in expectation; checked coarsely over random seeds with a 3x scale
// separation to stay above Poisson noise.
func TestRateScaleMonotonicQuick(t *testing.T) {
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		lo, err := Generate(Config{Profile: p, Seed: seed, Duration: 24 * time.Hour, RateScale: 0.3})
		if err != nil {
			return false
		}
		hi, err := Generate(Config{Profile: p, Seed: seed, Duration: 24 * time.Hour, RateScale: 0.9})
		if err != nil {
			return false
		}
		return hi.Len() > lo.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestBytesScaleWithDuration: doubling the window roughly doubles total
// bytes for a stable workload (within heavy-tail noise bounds).
func TestBytesScaleWithDuration(t *testing.T) {
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	short, err := Generate(Config{Profile: p, Seed: 50, Duration: 3 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Generate(Config{Profile: p, Seed: 50, Duration: 6 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(long.Summarize().BytesMoved) / float64(short.Summarize().BytesMoved)
	if ratio < 1.2 || ratio > 3.5 {
		t.Errorf("6d/3d byte ratio = %v, want ~2 within heavy-tail noise", ratio)
	}
}

// TestSmallJobFractionStableAcrossSeeds: the dominant-cluster share is a
// calibration constant, not a seed artifact.
func TestSmallJobFractionStableAcrossSeeds(t *testing.T) {
	p, err := profile.ByName("FB-2010")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 42, 1001} {
		tr, err := Generate(Config{Profile: p, Seed: seed, Duration: 12 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		small := 0
		for _, j := range tr.Jobs {
			if j.TotalBytes() < 10*units.GB {
				small++
			}
		}
		frac := float64(small) / float64(tr.Len())
		if frac < 0.93 || frac > 1.0 {
			t.Errorf("seed %d: small fraction %v, want ~0.98 (Table 2)", seed, frac)
		}
	}
}
