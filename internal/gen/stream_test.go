package gen

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/trace"
)

// TestGenerateToMatchesGenerate: streaming generation into a JSONL sink
// must produce the byte-identical file that materialized generation plus
// WriteJSONL produces — same jobs, same order, same IDs — at several
// parallelism levels. This is the contract that lets cmd/swimgen switch
// to the constant-memory path without changing any output.
func TestGenerateToMatchesGenerate(t *testing.T) {
	for _, workload := range []string{"CC-b", "FB-2009"} {
		p, err := profile.ByName(workload)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Profile: p, Seed: 5, Duration: 30 * time.Hour}
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var direct bytes.Buffer
		if err := trace.WriteJSONL(&direct, tr); err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 3, 8} {
			cfg.Parallelism = par
			var streamed bytes.Buffer
			sink := trace.NewJSONLWriter(&streamed)
			sum, err := GenerateTo(cfg, sink)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
				t.Errorf("%s P=%d: GenerateTo JSONL differs from Generate+WriteJSONL (%d vs %d bytes)",
					workload, par, streamed.Len(), direct.Len())
			}
			if want := tr.Summarize(); sum != want {
				t.Errorf("%s P=%d: GenerateTo summary %+v != %+v", workload, par, sum, want)
			}
		}
	}
}

// TestGenerateToSinkError: a failing sink aborts generation promptly with
// the sink's error, and the producer pipeline shuts down (covered by the
// race detector and goroutine exit via stop).
func TestGenerateToSinkError(t *testing.T) {
	p, err := profile.ByName("CC-b")
	if err != nil {
		t.Fatal(err)
	}
	sink := &failingSink{failAt: 10}
	_, err = GenerateTo(Config{Profile: p, Seed: 1, Duration: 24 * time.Hour}, sink)
	if err == nil || err.Error() != "sink full" {
		t.Fatalf("err = %v, want sink full", err)
	}
}

type failingSink struct {
	n      int
	failAt int
}

func (s *failingSink) Begin(trace.Meta) error { return nil }

func (s *failingSink) Write(*trace.Job) error {
	s.n++
	if s.n >= s.failAt {
		return errSinkFull
	}
	return nil
}

var errSinkFull = errSentinel("sink full")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
