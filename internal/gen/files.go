package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dist"
	"repro/internal/profile"
	"repro/internal/units"
)

// fileStore models the HDFS namespace the workload reads and writes, at
// the granularity the paper's trace analysis sees it: hashed path names
// with sizes and access times. It implements the §4 access behaviour:
//
//   - a job's input either creates a new dataset or re-reads a
//     pre-existing input or output (Figure 6's two re-access classes);
//   - re-access targets are drawn with Zipf-skewed popularity so that
//     frequency vs rank is a straight line in log-log space with slope
//     ≈ -5/6 (Figure 2);
//   - a recency-biased component concentrates re-access intervals in the
//     minutes-to-hours range (Figure 5);
//   - re-accessed files are chosen within the job's input-size decade, so
//     per-job data sizes (Figure 1) and file sizes (Figures 3-4) stay
//     consistent.
//
// The store is the one deliberately sequential piece of the generator:
// re-access causality (a job sees the namespace as of its submit time)
// is global state, so Generate threads jobs through it in submit order
// during the merge phase. All randomness still comes from the rng each
// call supplies — the job's own window stream.
type fileStore struct {
	p *profile.Profile
	// inputs and outputs are decade-bucketed (log10 of size) populations
	// in creation order.
	inputs  map[int][]*fileEntry
	outputs map[int][]*fileEntry
	// hotZipf is an exact bounded-Zipf rank sampler over the hot set: the
	// first hotSetSize files of a bucket are its stable hot datasets
	// ("master tables"), accessed with P(rank k) ∝ k^-ZipfAlpha. Using an
	// exact inverse-CDF table here pins the generated rank-frequency
	// slope to the profile's ZipfAlpha (the paper's 5/6) independent of
	// the workload's re-access fraction, which otherwise drags the slope
	// down à la Simon's copy model.
	hotZipf *dist.BoundedZipf
	seq     int64
}

// hotSetSize bounds the per-bucket hot set. Two-plus decades of ranks keep
// the log-log fit well conditioned.
const hotSetSize = 256

// fileEntry is one distinct file.
type fileEntry struct {
	path string
	size units.Bytes
}

func newFileStore(p *profile.Profile) *fileStore {
	hz, err := dist.NewBoundedZipf(hotSetSize, p.ZipfAlpha)
	if err != nil {
		// Profiles are validated before generation; a bad exponent here is
		// a programming error.
		panic(err)
	}
	return &fileStore{
		p:       p,
		inputs:  make(map[int][]*fileEntry),
		outputs: make(map[int][]*fileEntry),
		hotZipf: hz,
	}
}

// decade buckets a size by order of magnitude; zero-size files land in
// bucket 0.
func decade(size units.Bytes) int {
	if size <= 0 {
		return 0
	}
	return int(math.Floor(math.Log10(float64(size))))
}

// pickInput decides the input path for a job whose sampled input size is
// want. It returns the path and, when an existing file is re-accessed, the
// file's size (0 means a fresh file of exactly want bytes was created).
func (fs *fileStore) pickInput(rng *rand.Rand, want units.Bytes) (string, units.Bytes) {
	d := decade(want)
	u := rng.Float64()
	switch {
	case u < fs.p.ReuseInputProb:
		if f := fs.pickExisting(rng, fs.inputs[d]); f != nil {
			return f.path, f.size
		}
	case u < fs.p.ReuseInputProb+fs.p.ReuseOutputProb:
		if f := fs.pickExisting(rng, fs.outputs[d]); f != nil {
			return f.path, f.size
		}
	}
	// Fresh input dataset.
	f := &fileEntry{path: fs.newPath("in", d), size: want}
	fs.inputs[d] = append(fs.inputs[d], f)
	return f.path, 0
}

// recordOutput registers the job's output as a new file (a fraction of
// jobs overwrite a previous output instead, modeling recurring pipelines
// that refresh the same dataset). Overwrite targets are drawn with the
// same skewed popularity as reads, so output-side access frequency is also
// Zipf-like (Figure 2, bottom).
func (fs *fileStore) recordOutput(rng *rand.Rand, size units.Bytes) string {
	d := decade(size)
	const overwriteProb = 0.30
	bucket := fs.outputs[d]
	if len(bucket) > 0 && rng.Float64() < overwriteProb {
		f := fs.pickExisting(rng, bucket)
		f.size = size
		return f.path
	}
	f := &fileEntry{path: fs.newPath("out", d), size: size}
	fs.outputs[d] = append(fs.outputs[d], f)
	return f.path
}

// pickExisting selects a file from a creation-ordered bucket, or nil if
// the bucket is empty. Selection mixes two power laws:
//
//   - hot set: exact Zipf(ZipfAlpha) ranks over the bucket's first
//     hotSetSize files — stable hot datasets ("master tables") that
//     accumulate accesses for the life of the trace and anchor the
//     Figure 2 rank-frequency slope at the profile's exponent;
//   - recency: Zipf(FileRecencyAlpha) over reverse creation order — the
//     freshest datasets are re-read within minutes to hours, producing
//     Figure 5's short re-access intervals.
func (fs *fileStore) pickExisting(rng *rand.Rand, bucket []*fileEntry) *fileEntry {
	n := len(bucket)
	if n == 0 {
		return nil
	}
	const recencyMix = 0.35
	if rng.Float64() < recencyMix {
		k := dist.ApproxZipfRank(rng, n, fs.p.FileRecencyAlpha)
		return bucket[n-k] // k-th most recent
	}
	k := fs.hotZipf.SampleRank(rng)
	if k > n {
		k = 1 + (k-1)%n // young bucket: wrap into the available files
	}
	return bucket[k-1] // k-th oldest
}

// newPath creates a unique hashed-looking HDFS path. The study worked on
// hashed path names; we keep a readable prefix for debuggability.
func (fs *fileStore) newPath(kind string, d int) string {
	fs.seq++
	return fmt.Sprintf("/data/%s/%s/d%02d/%08x", fs.p.Name, kind, d, fs.seq)
}
