package gen

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"repro/internal/profile"
)

// firstWord extracts the Figure 10 grouping key from a generated name.
func firstWord(name string) string {
	return strings.ToLower(strings.FieldsFunc(name, func(r rune) bool {
		return r == ' ' || r == ':' || r == '_'
	})[0])
}

// TestNamerChiSquared: the small-job name mixture must reproduce the
// profile's Figure 10 weights. Chi-squared goodness of fit over the
// first-word categories; df = len(words)-1, bound at the p=0.001
// critical value with headroom.
func TestNamerChiSquared(t *testing.T) {
	for _, wl := range []string{"CC-a", "CC-b", "FB-2009"} {
		p, err := profile.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		if !p.HasNames {
			t.Fatalf("%s should carry names", wl)
		}
		// Expected first-word shares; duplicate words across entries
		// aggregate.
		expected := map[string]float64{}
		var total float64
		for _, e := range p.Names {
			expected[e.Word] += e.Weight
			total += e.Weight
		}

		n := newNamer(p)
		rng := rand.New(rand.NewPCG(77, 88))
		const draws = 100000
		counts := map[string]int{}
		for i := 0; i < draws; i++ {
			w := firstWord(n.name(rng, 0, true, int64(i)))
			if _, ok := expected[w]; !ok {
				t.Fatalf("%s: generated name word %q not in the profile table", wl, w)
			}
			counts[w]++
		}

		var chi2 float64
		for w, share := range expected {
			exp := draws * share / total
			d := float64(counts[w]) - exp
			chi2 += d * d / exp
		}
		// Critical values at p=0.001 for df 7 are ~24.3; allow headroom
		// for the aggregated-word tables.
		if chi2 > 30 {
			t.Errorf("%s: chi-squared = %.1f over df=%d, name mixture drifted from profile weights (counts %v)",
				wl, chi2, len(expected)-1, counts)
		}
	}
}

// TestNamerLargeBias: the large-job mixture must shift mass toward
// high-LargeBias words and away from LargeBias < 1 words, the mechanism
// behind Figure 10's bytes-weighted panel.
func TestNamerLargeBias(t *testing.T) {
	p, err := profile.ByName("CC-b")
	if err != nil {
		t.Fatal(err)
	}
	n := newNamer(p)
	rng := rand.New(rand.NewPCG(5, 6))
	const draws = 50000
	smallCounts := map[string]int{}
	largeCounts := map[string]int{}
	for i := 0; i < draws; i++ {
		smallCounts[firstWord(n.name(rng, 0, true, int64(i)))]++
		largeCounts[firstWord(n.name(rng, 1, false, int64(i)))]++
	}
	// CC-b: "insert" has LargeBias 5, "select" 0.3.
	if largeCounts["insert"] <= smallCounts["insert"] {
		t.Errorf("insert (LargeBias 5): large %d should exceed small %d",
			largeCounts["insert"], smallCounts["insert"])
	}
	if largeCounts["select"] >= smallCounts["select"] {
		t.Errorf("select (LargeBias 0.3): large %d should trail small %d",
			largeCounts["select"], smallCounts["select"])
	}
}

// TestNamerFrameworkStyles: each framework's generated suffix style must
// survive first-word extraction (the property the Figure 10 analysis
// depends on).
func TestNamerFrameworkStyles(t *testing.T) {
	p, err := profile.ByName("CC-b")
	if err != nil {
		t.Fatal(err)
	}
	n := newNamer(p)
	rng := rand.New(rand.NewPCG(9, 10))
	styles := map[profile.Framework]bool{}
	byWord := map[string]profile.Framework{}
	for _, e := range p.Names {
		byWord[e.Word] = e.Framework
	}
	for i := 0; i < 5000; i++ {
		name := n.name(rng, 0, true, int64(i))
		fw, ok := byWord[firstWord(name)]
		if !ok {
			t.Fatalf("unknown first word in %q", name)
		}
		styles[fw] = true
	}
	for _, fw := range []profile.Framework{profile.FrameworkHive, profile.FrameworkPig, profile.FrameworkOozie, profile.FrameworkNative} {
		if !styles[fw] {
			t.Errorf("no %s-style names generated", fw)
		}
	}
}

// TestNamerNoNames: a profile without a name table yields empty names.
func TestNamerNoNames(t *testing.T) {
	p, err := profile.ByName("FB-2010")
	if err != nil {
		t.Fatal(err)
	}
	n := newNamer(p)
	rng := rand.New(rand.NewPCG(1, 2))
	if got := n.name(rng, 0, true, 0); got != "" {
		t.Errorf("FB-2010 name = %q, want empty", got)
	}
}

// TestPigNamesUnique: Pig names embed a job counter, which is unique in
// real Hadoop logs — generated traces must not collide either (Hive and
// native names, by contrast, legitimately repeat across recurring
// pipeline runs; that repetition is what Figure 10 groups).
func TestPigNamesUnique(t *testing.T) {
	tr := genTest(t, "CC-b", 96*time.Hour, 19)
	seen := map[string]int64{}
	for _, j := range tr.Jobs {
		if !strings.HasPrefix(j.Name, "piglatin:") {
			continue
		}
		if prev, ok := seen[j.Name]; ok {
			t.Fatalf("jobs %d and %d share Pig name %q", prev, j.ID, j.Name)
		}
		seen[j.Name] = j.ID
	}
	if len(seen) < 100 {
		t.Fatalf("only %d Pig names generated; want a meaningful sample", len(seen))
	}
}
