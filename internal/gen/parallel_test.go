package gen

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/trace"
)

// jsonlBytes serializes a trace through the lossless native codec — the
// strictest equality the system offers: every field of every job, in
// order.
func jsonlBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelismByteIdentical is the cross-parallelism golden test the
// sharded generator's determinism contract hangs on: the same seed must
// produce the byte-identical JSONL trace at Parallelism 1, 2, and
// GOMAXPROCS. CC-b exercises every stateful path — names, input paths
// with re-access, and output paths with overwrites.
func TestParallelismByteIdentical(t *testing.T) {
	p, err := profile.ByName("CC-b")
	if err != nil {
		t.Fatal(err)
	}
	gen := func(par int) []byte {
		tr, err := Generate(Config{Profile: p, Seed: 9, Duration: 48 * time.Hour, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return jsonlBytes(t, tr)
	}
	golden := gen(1)
	if len(golden) == 0 {
		t.Fatal("empty golden trace")
	}
	levels := []int{2, 3, runtime.GOMAXPROCS(0), 16}
	for _, par := range levels {
		if got := gen(par); !bytes.Equal(got, golden) {
			t.Errorf("Parallelism=%d trace differs from Parallelism=1 (len %d vs %d)",
				par, len(got), len(golden))
		}
	}
}

// TestParallelismByteIdenticalAllWorkloads sweeps the remaining
// workloads at a shorter window: field availability differs per profile
// (FB-2009 has no paths, FB-2010 no names), so each exercises a
// different subset of the merge phase.
func TestParallelismByteIdenticalAllWorkloads(t *testing.T) {
	for _, name := range profile.Names() {
		p, err := profile.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var golden []byte
		for _, par := range []int{1, 4} {
			tr, err := Generate(Config{Profile: p, Seed: 31, Duration: 12 * time.Hour, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			b := jsonlBytes(t, tr)
			if par == 1 {
				golden = b
				continue
			}
			if !bytes.Equal(b, golden) {
				t.Errorf("%s: Parallelism=%d trace differs from serial", name, par)
			}
		}
	}
}

// TestParallelismConfig: 0 defaults to GOMAXPROCS, negatives are
// rejected, and a worker count far above the window count still works.
func TestParallelismConfig(t *testing.T) {
	p, err := profile.ByName("CC-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(Config{Profile: p, Seed: 1, Duration: 2 * time.Hour, Parallelism: -1}); err == nil {
		t.Error("negative parallelism should be rejected")
	}
	tr, err := Generate(Config{Profile: p, Seed: 1, Duration: 2 * time.Hour, Parallelism: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Error("oversubscribed generation produced an empty trace")
	}
	if _, err := Generate(Config{Profile: p, Seed: 1, Duration: 2 * time.Hour}); err != nil {
		t.Errorf("default parallelism failed: %v", err)
	}
}

// TestConcurrentGenerate runs several full generations simultaneously —
// under -race this proves the generator shares no unsynchronized state
// across either its internal workers or concurrent callers.
func TestConcurrentGenerate(t *testing.T) {
	p, err := profile.ByName("CC-e")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 4
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := Generate(Config{Profile: p, Seed: 7, Duration: 24 * time.Hour, Parallelism: 4})
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, tr); err != nil {
				errs[i] = err
				return
			}
			results[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Errorf("concurrent caller %d produced a different trace", i)
		}
	}
}
