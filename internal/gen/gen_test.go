package gen

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// genTest generates a short trace for a named workload.
func genTest(t *testing.T, name string, dur time.Duration, seed int64) *trace.Trace {
	t.Helper()
	p, err := profile.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(Config{Profile: p, Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateValidates(t *testing.T) {
	for _, name := range profile.Names() {
		tr := genTest(t, name, 48*time.Hour, 1)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: generated trace invalid: %v", name, err)
		}
		if tr.Len() == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
}

func TestGenerateConfigErrors(t *testing.T) {
	p, _ := profile.ByName("CC-a")
	cases := []Config{
		{},                                  // nil profile
		{Profile: p, Duration: time.Minute}, // too short
		{Profile: p, RateScale: -1},         // negative scale
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	bad := *p
	bad.TotalJobs++ // breaks cluster-sum invariant
	if _, err := Generate(Config{Profile: &bad}); err == nil {
		t.Error("invalid profile should be rejected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTest(t, "CC-b", 24*time.Hour, 42)
	b := genTest(t, "CC-b", 24*time.Hour, 42)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Jobs {
		x, y := a.Jobs[i], b.Jobs[i]
		if x.InputBytes != y.InputBytes || !x.SubmitTime.Equal(y.SubmitTime) ||
			x.Name != y.Name || x.InputPath != y.InputPath {
			t.Fatalf("job %d differs between identical runs", i)
		}
	}
	c := genTest(t, "CC-b", 24*time.Hour, 43)
	if c.Len() == a.Len() {
		same := true
		for i := range a.Jobs {
			if a.Jobs[i].InputBytes != c.Jobs[i].InputBytes {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateJobCountNearTarget(t *testing.T) {
	// Over a decent window, the mean arrival rate should track the
	// profile's Table-1-implied rate.
	for _, name := range []string{"CC-b", "CC-e"} {
		p, _ := profile.ByName(name)
		dur := 7 * 24 * time.Hour
		tr := genTest(t, name, dur, 7)
		want := p.JobRatePerHour() * dur.Hours()
		got := float64(tr.Len())
		if got < want*0.5 || got > want*2.0 {
			t.Errorf("%s: generated %v jobs, want within 2x of %v", name, got, want)
		}
	}
}

func TestGenerateRateScale(t *testing.T) {
	p, _ := profile.ByName("CC-b")
	full, err := Generate(Config{Profile: p, Seed: 3, Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := Generate(Config{Profile: p, Seed: 3, Duration: 48 * time.Hour, RateScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tenth.Len()) / float64(full.Len())
	if ratio < 0.05 || ratio > 0.2 {
		t.Errorf("scaled trace ratio = %v, want ~0.1", ratio)
	}
}

func TestSmallJobsDominateGenerated(t *testing.T) {
	tr := genTest(t, "FB-2009", 72*time.Hour, 5)
	small := 0
	for _, j := range tr.Jobs {
		if j.TotalBytes() < 10*units.GB {
			small++
		}
	}
	frac := float64(small) / float64(tr.Len())
	if frac < 0.9 {
		t.Errorf("small-job fraction = %v, want > 0.9 (§6.2)", frac)
	}
}

func TestMapOnlyJobsGenerated(t *testing.T) {
	tr := genTest(t, "CC-e", 96*time.Hour, 11)
	mapOnly := 0
	for _, j := range tr.Jobs {
		if j.MapOnly() {
			mapOnly++
			if j.ReduceTasks != 0 || j.ShuffleBytes != 0 {
				t.Fatal("map-only job with reduce artifacts")
			}
		}
	}
	if mapOnly == 0 {
		t.Error("CC-e should generate map-only jobs")
	}
}

func TestFieldAvailability(t *testing.T) {
	// FB-2009: no paths, has names. FB-2010: input paths only, no names.
	fb09 := genTest(t, "FB-2009", 24*time.Hour, 2)
	if fb09.HasPaths() || fb09.HasOutputPaths() {
		t.Error("FB-2009 should carry no paths")
	}
	if !fb09.HasNames() {
		t.Error("FB-2009 should carry names")
	}
	fb10 := genTest(t, "FB-2010", 4*time.Hour, 2)
	if !fb10.HasPaths() {
		t.Error("FB-2010 should carry input paths")
	}
	if fb10.HasOutputPaths() {
		t.Error("FB-2010 should not carry output paths")
	}
	if fb10.HasNames() {
		t.Error("FB-2010 should not carry names")
	}
}

func TestInputReuseHappens(t *testing.T) {
	tr := genTest(t, "CC-c", 96*time.Hour, 9)
	seen := map[string]int{}
	reused := 0
	for _, j := range tr.Jobs {
		if j.InputPath == "" {
			continue
		}
		if seen[j.InputPath] > 0 {
			reused++
		}
		seen[j.InputPath]++
	}
	frac := float64(reused) / float64(tr.Len())
	// CC-c targets ~75% total reuse (0.45 input + 0.30 output).
	if frac < 0.4 {
		t.Errorf("CC-c re-access fraction = %v, want substantial (paper: up to 78%%)", frac)
	}
}

func TestReaccessedSizesConsistent(t *testing.T) {
	// Replaying the trace in submit order, every input re-access must read
	// the file's size as of that moment (new inputs set it; output writes
	// may overwrite it).
	tr := genTest(t, "CC-b", 48*time.Hour, 13)
	sizes := map[string]units.Bytes{}
	reaccesses := 0
	for _, j := range tr.Jobs {
		if j.InputPath != "" {
			if prev, ok := sizes[j.InputPath]; ok {
				reaccesses++
				if prev != j.InputBytes {
					t.Fatalf("re-access of %s read %v, file has %v", j.InputPath, j.InputBytes, prev)
				}
			} else {
				sizes[j.InputPath] = j.InputBytes
			}
		}
		if j.OutputPath != "" {
			sizes[j.OutputPath] = j.OutputBytes
		}
	}
	if reaccesses == 0 {
		t.Error("expected some re-accesses in CC-b")
	}
}

func TestNamesLookRealistic(t *testing.T) {
	tr := genTest(t, "CC-b", 24*time.Hour, 17)
	words := map[string]bool{}
	for _, j := range tr.Jobs {
		if j.Name == "" {
			t.Fatal("CC-b job without a name")
		}
		first := strings.ToLower(strings.FieldsFunc(j.Name, func(r rune) bool {
			return r == ' ' || r == ':' || r == '_'
		})[0])
		words[first] = true
	}
	for _, expect := range []string{"piglatin", "insert"} {
		if !words[expect] {
			t.Errorf("expected some job names to start with %q; got %v", expect, words)
		}
	}
}

func TestTaskCounts(t *testing.T) {
	tr := genTest(t, "FB-2010", 6*time.Hour, 23)
	for _, j := range tr.Jobs {
		if j.MapTasks < 1 {
			t.Fatalf("job %d has %d map tasks", j.ID, j.MapTasks)
		}
		if (j.ReduceTime > 0 || j.ShuffleBytes > 0) && j.ReduceTasks < 1 {
			t.Fatalf("job %d has reduce work but no reduce tasks", j.ID)
		}
		if j.ReduceTime == 0 && j.ShuffleBytes == 0 && j.ReduceTasks != 0 {
			t.Fatalf("map-only job %d has reduce tasks", j.ID)
		}
	}
}

func TestMapTaskCountHelpers(t *testing.T) {
	if n := mapTaskCount(1*units.KB, 10); n != 1 {
		t.Errorf("tiny job map tasks = %d, want 1", n)
	}
	if n := mapTaskCount(10*units.GB, 100000); n != 40 {
		t.Errorf("10GB job map tasks = %d, want 40 (input-bound)", n)
	}
	if n := mapTaskCount(10*units.GB, 60); n != 2 {
		t.Errorf("map tasks = %d, want 2 (time-bound)", n)
	}
	if n := reduceTaskCount(0, 30); n != 1 {
		t.Errorf("reduce tasks = %d, want 1", n)
	}
	if n := reduceTaskCount(10*units.GB, 100000); n != 11 {
		t.Errorf("reduce tasks = %d, want 11", n)
	}
}

// The Zipf rank samplers the file store draws from are covered by
// property tests in internal/dist (bounds, skew, exponent recovery);
// this test keeps the generator-side path warm on a path-bearing
// workload.
func TestZipfSamplersExercised(t *testing.T) {
	tr := genTest(t, "CC-d", 24*time.Hour, 31) // exercises rank sampling internally
	if tr.Len() == 0 {
		t.Fatal("empty CC-d trace")
	}
}

func TestDurationClampedToWindow(t *testing.T) {
	dur := 24 * time.Hour
	tr := genTest(t, "CC-a", dur, 3)
	p, _ := profile.ByName("CC-a")
	limit := p.TraceStart.Add(dur)
	for _, j := range tr.Jobs {
		if j.SubmitTime.After(limit) {
			t.Fatalf("job submitted at %v, after window end %v", j.SubmitTime, limit)
		}
	}
}

func TestIDsSequential(t *testing.T) {
	tr := genTest(t, "CC-e", 24*time.Hour, 4)
	for i, j := range tr.Jobs {
		if j.ID != int64(i+1) {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
	}
}

func TestSharedFactorCouplesBytesAndTime(t *testing.T) {
	// Within a single cluster, bigger-than-centroid jobs should tend to
	// have bigger-than-centroid task time (the Fig 9 correlation driver).
	tr := genTest(t, "CC-c", 7*24*time.Hour, 77)
	var logBytes, logTime []float64
	for _, j := range tr.Jobs {
		// Restrict to the dominant small-jobs cluster region to avoid
		// cross-cluster effects: jobs under 100 GB total.
		if j.TotalBytes() > 0 && j.TotalBytes() < 100*units.GB && j.TotalTaskTime() > 0 {
			logBytes = append(logBytes, math.Log(float64(j.TotalBytes())))
			logTime = append(logTime, math.Log(float64(j.TotalTaskTime())))
		}
	}
	if len(logBytes) < 100 {
		t.Fatal("not enough jobs for correlation check")
	}
	r := pearson(logBytes, logTime)
	if r < 0.3 {
		t.Errorf("per-job log bytes/time correlation = %v, want > 0.3", r)
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}
