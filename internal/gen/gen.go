// Package gen synthesizes workload traces from the calibrated profiles in
// internal/profile. It is the documented substitution for the proprietary
// production traces (DESIGN.md): the generator reproduces the published
// statistics — Table 2 job-type mixtures with lognormal within-cluster
// spread, a bursty diurnal arrival process (§5), Zipf-skewed file
// popularity with temporal locality (§4), and Figure 10's job-name mixes —
// so every analysis in internal/analysis runs on realistic input.
//
// Generation is deterministic: one seed fixes the whole trace.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config controls one generation run.
type Config struct {
	// Profile is the calibrated workload to synthesize. Required.
	Profile *profile.Profile
	// Seed drives all randomness.
	Seed int64
	// Duration optionally overrides the profile trace length (useful for
	// tests and quick runs). Zero means the profile's full length.
	Duration time.Duration
	// RateScale scales the arrival rate; 0 means 1.0. Scaling the rate
	// rather than truncating time preserves weekly structure while
	// shrinking the trace (§7's scale-down discussion).
	RateScale float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Profile == nil {
		return c, fmt.Errorf("gen: nil profile")
	}
	if err := c.Profile.Validate(); err != nil {
		return c, fmt.Errorf("gen: invalid profile: %w", err)
	}
	if c.Duration == 0 {
		c.Duration = c.Profile.TraceLength
	}
	if c.Duration < time.Hour {
		return c, fmt.Errorf("gen: duration %v below one hour", c.Duration)
	}
	if c.RateScale == 0 {
		c.RateScale = 1
	}
	if c.RateScale < 0 {
		return c, fmt.Errorf("gen: negative rate scale")
	}
	return c, nil
}

// Generate synthesizes a trace per the configuration.
func Generate(cfg Config) (*trace.Trace, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := cfg.Profile
	rng := rand.New(rand.NewSource(cfg.Seed))

	g := &generator{
		p:     p,
		rng:   rng,
		files: newFileStore(p, rng),
		namer: newNamer(p, rng),
	}

	tr := trace.New(trace.Meta{
		Name:     p.Name,
		Machines: p.Machines,
		Start:    p.TraceStart,
		Length:   cfg.Duration,
	})

	hours := int(math.Ceil(cfg.Duration.Hours()))
	arr := newArrivalProcess(p, cfg.RateScale, rng)
	end := p.TraceStart.Add(cfg.Duration)
	counts := make([]int, len(p.Clusters))
	type arrival struct {
		off     float64
		cluster int
	}
	for h := 0; h < hours; h++ {
		arr.clusterCountsInHour(h, counts)
		hourStart := p.TraceStart.Add(time.Duration(h) * time.Hour)
		// Draw submit offsets and sort them so jobs are sampled in submit
		// order: file-store causality (a re-access sees the file state as
		// of its submit time) then holds within the hour too.
		var arrivals []arrival
		for ci, n := range counts {
			for i := 0; i < n; i++ {
				arrivals = append(arrivals, arrival{off: rng.Float64(), cluster: ci})
			}
		}
		sort.Slice(arrivals, func(i, k int) bool { return arrivals[i].off < arrivals[k].off })
		for _, a := range arrivals {
			submit := hourStart.Add(time.Duration(a.off * float64(time.Hour)))
			if submit.After(end) {
				continue
			}
			j := g.sampleJob(submit, a.cluster)
			tr.Add(j)
		}
	}
	tr.Sort()
	for i, j := range tr.Jobs {
		j.ID = int64(i + 1)
	}
	return tr, nil
}

// generator holds the per-run sampling state.
type generator struct {
	p     *profile.Profile
	rng   *rand.Rand
	files *fileStore
	namer *namer
}

// sampleJob draws one job of the given cluster: dimensions, files, name.
func (g *generator) sampleJob(submit time.Time, ci int) *trace.Job {
	p := g.p
	c := p.Clusters[ci]

	// Shared multiplicative factor correlates byte and time dimensions
	// within a job, which in turn produces the strong hourly bytes ↔
	// task-time correlation of Figure 9.
	shared := math.Exp(p.SizeSigma * 0.75 * g.rng.NormFloat64())
	byteJitter := p.SizeSigma * 0.66
	timeJitter := p.TimeSigma * 0.66

	sampleBytes := func(centroid units.Bytes) units.Bytes {
		if centroid <= 0 {
			return 0
		}
		v := float64(centroid) * shared * math.Exp(byteJitter*g.rng.NormFloat64())
		if v < 1 {
			v = 1
		}
		return units.Bytes(math.Round(v))
	}
	sampleTime := func(centroid units.TaskSeconds) units.TaskSeconds {
		if centroid <= 0 {
			return 0
		}
		// Task-time scales sublinearly with the shared data factor:
		// doubling input does not quite double compute on real clusters.
		v := float64(centroid) * math.Pow(shared, 0.8) * math.Exp(timeJitter*g.rng.NormFloat64())
		if v < 1 {
			v = 1
		}
		return units.TaskSeconds(v)
	}

	j := &trace.Job{
		SubmitTime:   submit,
		InputBytes:   sampleBytes(c.Input),
		ShuffleBytes: sampleBytes(c.Shuffle),
		OutputBytes:  sampleBytes(c.Output),
		MapTime:      sampleTime(c.MapTime),
		ReduceTime:   sampleTime(c.Reduce),
	}
	// Duration jitters around the centroid with the time sigma, milder
	// shared coupling.
	durSec := c.Duration.Seconds() * math.Pow(shared, 0.4) * math.Exp(timeJitter*g.rng.NormFloat64())
	if durSec < 1 {
		durSec = 1
	}
	j.Duration = time.Duration(durSec * float64(time.Second))

	j.MapTasks = mapTaskCount(j.InputBytes, j.MapTime)
	if j.ReduceTime > 0 || j.ShuffleBytes > 0 {
		j.ReduceTasks = reduceTaskCount(j.ShuffleBytes, j.ReduceTime)
	}

	// File paths: input possibly re-accesses a pre-existing file (Fig 6);
	// when it does, the job reads that file's actual size.
	if g.p.HasInputPaths {
		path, size := g.files.pickInput(submit, j.InputBytes)
		j.InputPath = path
		if size > 0 {
			j.InputBytes = size
		}
	}
	// When output paths are absent from the trace (FB-2010), outputs still
	// exist in the real system but are unobservable; the model simply does
	// not record them.
	if g.p.HasOutputPaths {
		j.OutputPath = g.files.recordOutput(submit, j.OutputBytes)
	}

	if g.p.HasNames {
		j.Name = g.namer.name(ci, isSmallCluster(ci))
	}
	return j
}

// isSmallCluster: by Table 2 construction, cluster 0 is the small-jobs type.
func isSmallCluster(ci int) bool { return ci == 0 }

// mapTaskCount derives a plausible task count: roughly one map task per
// 256 MB of input, bounded by one task per 30 task-seconds, and at least 1.
// The paper notes small jobs run "sometimes a single map task and a single
// reduce task" (§6.2).
func mapTaskCount(input units.Bytes, mapTime units.TaskSeconds) int {
	bySplit := int(math.Ceil(float64(input) / float64(256*units.MB)))
	byTime := int(math.Ceil(float64(mapTime) / 30))
	n := bySplit
	if byTime < n {
		n = byTime
	}
	if n < 1 {
		n = 1
	}
	return n
}

// reduceTaskCount mirrors mapTaskCount for the reduce stage: one reducer
// per GB of shuffle, bounded by one per 60 task-seconds, at least 1.
func reduceTaskCount(shuffle units.Bytes, reduceTime units.TaskSeconds) int {
	byShuffle := int(math.Ceil(float64(shuffle)/float64(units.GB))) + 1
	byTime := int(math.Ceil(float64(reduceTime) / 60))
	n := byShuffle
	if byTime < n {
		n = byTime
	}
	if n < 1 {
		n = 1
	}
	return n
}

// arrivalProcess produces per-hour, per-cluster job counts with the
// paper's observed temporal structure (§5.1–5.2): a diurnal, weekend-dipped
// interactive stream of small jobs, and a separate batch stream for the
// heavy job types with its own (night-leaning, independently noisy)
// modulation. Decoupling the two streams is what keeps the hourly
// job-count series only weakly correlated with the byte and task-time
// series (Figure 9: jobs-bytes 0.21, jobs-task-time 0.14) while bytes and
// task-time stay strongly coupled (0.62) — both are carried by the same
// heavy jobs.
type arrivalProcess struct {
	p *profile.Profile
	// clusterRates[i] is the mean arrivals/hour of cluster i.
	clusterRates []float64
	rng          *rand.Rand
	spikes       dist.Pareto
}

func newArrivalProcess(p *profile.Profile, rateScale float64, rng *rand.Rand) *arrivalProcess {
	hours := p.TraceLength.Hours()
	rates := make([]float64, len(p.Clusters))
	for i, c := range p.Clusters {
		rates[i] = float64(c.Count) / hours * rateScale
	}
	return &arrivalProcess{
		p:            p,
		clusterRates: rates,
		rng:          rng,
		spikes:       dist.Pareto{Xm: 1.5, Alpha: p.SpikeAlpha},
	}
}

// clusterCountsInHour fills counts[i] with the number of cluster-i jobs
// submitted in hour h since trace start.
func (a *arrivalProcess) clusterCountsInHour(h int, counts []int) {
	p := a.p
	hourOfDay := float64(h % 24)
	// Weekend dip: days 5 and 6 of each week (traces start on a Monday).
	dayOfWeek := (h / 24) % 7
	weekend := dayOfWeek >= 5

	// Interactive stream: analyst-driven small jobs peak mid-afternoon and
	// dip hard on weekends.
	smallDiurnal := 1 + p.DiurnalAmplitude*math.Sin(2*math.Pi*(hourOfDay-9)/24)
	smallWeekly := 1.0
	if weekend {
		smallWeekly = 0.7
	}
	smallNoise := math.Exp(p.NoiseSigma*a.rng.NormFloat64() - p.NoiseSigma*p.NoiseSigma/2)
	smallRate := a.clusterRates[0] * smallDiurnal * smallWeekly * smallNoise
	if a.rng.Float64() < p.SpikeProb {
		smallRate *= a.spikes.Sample(a.rng)
	}
	counts[0] = dist.Poisson(a.rng, smallRate)

	// Batch stream: recurring pipelines lean toward night hours, run on
	// weekends too, and burst on their own schedule. One shared noise draw
	// per hour makes the heavy types co-burst, which is what couples the
	// byte and task-time series.
	heavyDiurnal := 1 + 0.5*p.DiurnalAmplitude*math.Sin(2*math.Pi*(hourOfDay-20)/24)
	heavyWeekly := 1.0
	if weekend {
		heavyWeekly = 0.9
	}
	heavySigma := p.NoiseSigma * 0.8
	heavyNoise := math.Exp(heavySigma*a.rng.NormFloat64() - heavySigma*heavySigma/2)
	if a.rng.Float64() < p.SpikeProb {
		heavyNoise *= a.spikes.Sample(a.rng)
	}
	for i := 1; i < len(a.clusterRates); i++ {
		rate := a.clusterRates[i] * heavyDiurnal * heavyWeekly * heavyNoise
		counts[i] = dist.Poisson(a.rng, rate)
	}
}
