// Package gen synthesizes workload traces from the calibrated profiles in
// internal/profile. It is the documented substitution for the proprietary
// production traces (DESIGN.md): the generator reproduces the published
// statistics — Table 2 job-type mixtures with lognormal within-cluster
// spread, a bursty diurnal arrival process (§5), Zipf-skewed file
// popularity with temporal locality (§4), and Figure 10's job-name mixes —
// so every analysis in internal/analysis runs on realistic input.
//
// Generation is deterministic AND parallel: the trace timeline is sharded
// into one-hour windows, each driven by an independent PCG stream derived
// from (Seed, window index), sampled concurrently by a bounded worker
// pool, and merged in submit-time order. Because no window ever observes
// another window's randomness, one seed fixes the whole trace at any
// worker count — see DESIGN.md for the full argument.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config controls one generation run.
type Config struct {
	// Profile is the calibrated workload to synthesize. Required.
	Profile *profile.Profile
	// Seed drives all randomness.
	Seed int64
	// Duration optionally overrides the profile trace length (useful for
	// tests and quick runs). Zero means the profile's full length.
	Duration time.Duration
	// RateScale scales the arrival rate; 0 means 1.0. Scaling the rate
	// rather than truncating time preserves weekly structure while
	// shrinking the trace (§7's scale-down discussion).
	RateScale float64
	// Parallelism is the number of workers sampling trace windows
	// concurrently; 0 means runtime.GOMAXPROCS(0). The generated trace
	// is byte-identical at every parallelism level: randomness is
	// derived per window from (Seed, window index), never from
	// goroutine schedule.
	Parallelism int
}

func (c Config) withDefaults() (Config, error) {
	if c.Profile == nil {
		return c, fmt.Errorf("gen: nil profile")
	}
	if err := c.Profile.Validate(); err != nil {
		return c, fmt.Errorf("gen: invalid profile: %w", err)
	}
	if c.Duration == 0 {
		c.Duration = c.Profile.TraceLength
	}
	if c.Duration < time.Hour {
		return c, fmt.Errorf("gen: duration %v below one hour", c.Duration)
	}
	if c.RateScale == 0 {
		c.RateScale = 1
	}
	if c.RateScale < 0 {
		return c, fmt.Errorf("gen: negative rate scale")
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Parallelism < 0 {
		return c, fmt.Errorf("gen: negative parallelism")
	}
	return c, nil
}

// Generate synthesizes a trace in memory. It is GenerateTo into a
// collecting sink; see GenerateTo for the phase structure.
func Generate(cfg Config) (*trace.Trace, error) {
	var cs trace.CollectSink
	if _, err := GenerateTo(cfg, &cs); err != nil {
		return nil, err
	}
	return cs.Trace(), nil
}

// GenerateTo synthesizes a trace per the configuration, streaming jobs
// into sink in submit order, and returns the Table-1 summary of what it
// wrote. Two phases run as a bounded pipeline:
//
// Phase 1 (parallel): each one-hour window independently samples its
// arrival counts, submit offsets, job dimensions, and job names from a
// window-local PCG stream. Windows share no mutable state, so the pool
// schedule cannot influence the draws. At most ~2× Parallelism sampled
// windows exist at once — the generator's memory is bounded by the
// window prefetch depth, never by trace length.
//
// Phase 2 (sequential): windows are consumed in timeline order and the
// one trace-global piece of state — the simulated HDFS namespace — is
// threaded through, so a re-access sees the file population exactly as
// of its submit time (§4 causality). File-path draws come from the
// job's own window stream, kept alive across the phases. Within a
// window, jobs are already in submit order, and windows partition the
// timeline hour by hour, so the concatenation the sink receives is the
// sorted trace with sequential IDs — byte-identical to Generate +
// WriteJSONL at every parallelism level.
func GenerateTo(cfg Config, sink trace.Sink) (trace.Summary, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return trace.Summary{}, err
	}
	p := cfg.Profile
	meta := trace.Meta{
		Name:     p.Name,
		Machines: p.Machines,
		Start:    p.TraceStart,
		Length:   cfg.Duration,
	}
	if err := sink.Begin(meta); err != nil {
		return trace.Summary{}, err
	}

	hours := int(math.Ceil(cfg.Duration.Hours()))
	arr := newArrivalProcess(p, cfg.RateScale)
	namer := newNamer(p)
	end := p.TraceStart.Add(cfg.Duration)
	workers := cfg.Parallelism
	if workers > hours {
		workers = hours
	}

	// Bounded out-of-order sampling, in-order consumption: the producer
	// hands the consumer one single-slot channel per window, in timeline
	// order; `pending`'s capacity is the prefetch window and `sem`
	// bounds concurrent samplers. `stop` aborts the pipeline if the sink
	// fails mid-trace.
	pending := make(chan chan *window, 2*workers)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		sem := make(chan struct{}, workers)
		for h := 0; h < hours; h++ {
			ch := make(chan *window, 1)
			select {
			case pending <- ch:
			case <-stop:
				return
			}
			select {
			case sem <- struct{}{}:
			case <-stop:
				return
			}
			go func(h int, ch chan *window) {
				ch <- sampleWindow(p, arr, namer, cfg.Seed, h, end)
				<-sem
			}(h, ch)
		}
		close(pending)
	}()

	files := newFileStore(p)
	acc := trace.NewSummaryAccumulator(meta)
	var id int64
	for ch := range pending {
		w := <-ch
		for _, j := range w.jobs {
			// Input paths: possibly re-access a pre-existing file
			// (Fig 6); when a job re-reads, it sees the file's actual
			// size as of its submit time.
			if p.HasInputPaths {
				path, size := files.pickInput(w.rng, j.InputBytes)
				j.InputPath = path
				if size > 0 {
					j.InputBytes = size
				}
			}
			// When output paths are absent from the trace (FB-2010),
			// outputs still exist in the real system but are
			// unobservable; the model simply does not record them.
			if p.HasOutputPaths {
				j.OutputPath = files.recordOutput(w.rng, j.OutputBytes)
			}
			id++
			j.ID = id
			acc.Observe(j)
			if err := sink.Write(j); err != nil {
				return trace.Summary{}, err
			}
		}
	}
	return acc.Summary(), nil
}

// window is one sampled hour of the timeline: its jobs in submit order
// plus the window's stream, carried into the merge phase for the
// file-path draws that need the global namespace.
type window struct {
	jobs []*trace.Job
	rng  *rand.Rand
}

// splitmix64 is the SplitMix64 finalizer. It turns the weakly related
// inputs (seed, window index) into statistically independent 64-bit
// values fit to seed one PCG stream per window.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// windowRNG derives window h's private stream from the run seed. Streams
// for different (seed, h) pairs are independent by construction, which
// is the whole determinism story: a window's draws depend on nothing
// but its identity.
func windowRNG(seed int64, h int) *rand.Rand {
	s := splitmix64(uint64(seed))
	hi := splitmix64(s ^ splitmix64(uint64(h)<<1|1))
	lo := splitmix64(hi ^ 0xda942042e4dd58b5)
	return rand.New(rand.NewPCG(hi, lo))
}

// sampleWindow produces hour h: arrival counts, sorted submit offsets,
// and fully sampled job dimensions and names, all from the window's own
// stream.
func sampleWindow(p *profile.Profile, arr *arrivalProcess, namer *namer, seed int64, h int, end time.Time) *window {
	rng := windowRNG(seed, h)
	counts := make([]int, len(p.Clusters))
	arr.clusterCountsInHour(rng, h, counts)

	hourStart := p.TraceStart.Add(time.Duration(h) * time.Hour)
	type arrival struct {
		off     float64
		cluster int
	}
	var arrivals []arrival
	for ci, n := range counts {
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, arrival{off: rng.Float64(), cluster: ci})
		}
	}
	// Sample jobs in submit order so that within-window draw order — and
	// with it the merge phase's file-store causality — is well defined.
	sort.Slice(arrivals, func(i, k int) bool {
		if arrivals[i].off != arrivals[k].off {
			return arrivals[i].off < arrivals[k].off
		}
		return arrivals[i].cluster < arrivals[k].cluster
	})

	w := &window{rng: rng}
	for i, a := range arrivals {
		submit := hourStart.Add(time.Duration(a.off * float64(time.Hour)))
		if submit.After(end) {
			continue
		}
		// (window, index) is unique across the trace and independent of
		// the worker schedule; jobsPerWindowCap bounds the index term.
		uniq := int64(h)*jobsPerWindowCap + int64(i)
		w.jobs = append(w.jobs, sampleJob(p, rng, namer, submit, a.cluster, uniq))
	}
	return w
}

// jobsPerWindowCap spaces the per-window uniq id ranges. No sampled
// hour approaches a million arrivals (FB-2010's heaviest burst hours
// run ~10^5), so (window, index) packs into one int64 without
// collisions.
const jobsPerWindowCap = 1_000_000

// sampleJob draws one job of the given cluster: dimensions and name.
// File paths are assigned later, in the sequential merge phase.
func sampleJob(p *profile.Profile, rng *rand.Rand, namer *namer, submit time.Time, ci int, uniq int64) *trace.Job {
	c := p.Clusters[ci]

	// Shared multiplicative factor correlates byte and time dimensions
	// within a job, which in turn produces the strong hourly bytes ↔
	// task-time correlation of Figure 9.
	shared := math.Exp(p.SizeSigma * 0.75 * rng.NormFloat64())
	byteJitter := dist.LogNormal{Sigma: p.SizeSigma * 0.66}
	timeJitter := dist.LogNormal{Sigma: p.TimeSigma * 0.66}

	sampleBytes := func(centroid units.Bytes) units.Bytes {
		if centroid <= 0 {
			return 0
		}
		v := float64(centroid) * shared * byteJitter.Sample(rng)
		if v < 1 {
			v = 1
		}
		return units.Bytes(math.Round(v))
	}
	sampleTime := func(centroid units.TaskSeconds) units.TaskSeconds {
		if centroid <= 0 {
			return 0
		}
		// Task-time scales sublinearly with the shared data factor:
		// doubling input does not quite double compute on real clusters.
		v := float64(centroid) * math.Pow(shared, 0.8) * timeJitter.Sample(rng)
		if v < 1 {
			v = 1
		}
		return units.TaskSeconds(v)
	}

	j := &trace.Job{
		SubmitTime:   submit,
		InputBytes:   sampleBytes(c.Input),
		ShuffleBytes: sampleBytes(c.Shuffle),
		OutputBytes:  sampleBytes(c.Output),
		MapTime:      sampleTime(c.MapTime),
		ReduceTime:   sampleTime(c.Reduce),
	}
	// Duration jitters around the centroid with the time sigma, milder
	// shared coupling.
	durSec := c.Duration.Seconds() * math.Pow(shared, 0.4) * timeJitter.Sample(rng)
	if durSec < 1 {
		durSec = 1
	}
	// Physical floor: task-seconds accrue on real slots, so a job's
	// average parallelism (task-time over makespan) cannot exceed the
	// cluster's slot count. Without this floor, an independently jittered
	// duration can imply a job running at several times the whole
	// cluster's parallelism, something no genuine history log contains.
	// (Aggregate capacity across overlapping jobs is deliberately NOT
	// enforced: the generator is an open-loop sampler of submission
	// behaviour; queueing backpressure is internal/cluster's replay job.)
	maxParallelism := float64(p.Machines * p.SlotsPerMachine)
	if minDur := float64(j.TotalTaskTime()) / maxParallelism; durSec < minDur {
		durSec = minDur
	}
	j.Duration = time.Duration(durSec * float64(time.Second))

	j.MapTasks = mapTaskCount(j.InputBytes, j.MapTime)
	if j.ReduceTime > 0 || j.ShuffleBytes > 0 {
		j.ReduceTasks = reduceTaskCount(j.ShuffleBytes, j.ReduceTime)
	}

	if p.HasNames {
		j.Name = namer.name(rng, ci, isSmallCluster(ci), uniq)
	}
	return j
}

// isSmallCluster: by Table 2 construction, cluster 0 is the small-jobs type.
func isSmallCluster(ci int) bool { return ci == 0 }

// mapTaskCount derives a plausible task count: roughly one map task per
// 256 MB of input, bounded by one task per 30 task-seconds, and at least 1.
// The paper notes small jobs run "sometimes a single map task and a single
// reduce task" (§6.2).
func mapTaskCount(input units.Bytes, mapTime units.TaskSeconds) int {
	bySplit := int(math.Ceil(float64(input) / float64(256*units.MB)))
	byTime := int(math.Ceil(float64(mapTime) / 30))
	n := bySplit
	if byTime < n {
		n = byTime
	}
	if n < 1 {
		n = 1
	}
	return n
}

// reduceTaskCount mirrors mapTaskCount for the reduce stage: one reducer
// per GB of shuffle, bounded by one per 60 task-seconds, at least 1.
func reduceTaskCount(shuffle units.Bytes, reduceTime units.TaskSeconds) int {
	byShuffle := int(math.Ceil(float64(shuffle)/float64(units.GB))) + 1
	byTime := int(math.Ceil(float64(reduceTime) / 60))
	n := byShuffle
	if byTime < n {
		n = byTime
	}
	if n < 1 {
		n = 1
	}
	return n
}

// arrivalProcess produces per-hour, per-cluster job counts with the
// paper's observed temporal structure (§5.1–5.2): a diurnal, weekend-dipped
// interactive stream of small jobs, and a separate batch stream for the
// heavy job types with its own (night-leaning, independently noisy)
// modulation. Decoupling the two streams is what keeps the hourly
// job-count series only weakly correlated with the byte and task-time
// series (Figure 9: jobs-bytes 0.21, jobs-task-time 0.14) while bytes and
// task-time stay strongly coupled (0.62) — both are carried by the same
// heavy jobs.
//
// The process itself is immutable after construction: every draw comes
// from the rng handed in per call, so windows can sample their hours
// concurrently.
type arrivalProcess struct {
	p *profile.Profile
	// clusterRates[i] is the mean arrivals/hour of cluster i.
	clusterRates []float64
	spikes       dist.Pareto
	smallNoise   dist.LogNormal
	heavyNoise   dist.LogNormal
}

func newArrivalProcess(p *profile.Profile, rateScale float64) *arrivalProcess {
	hours := p.TraceLength.Hours()
	rates := make([]float64, len(p.Clusters))
	for i, c := range p.Clusters {
		rates[i] = float64(c.Count) / hours * rateScale
	}
	return &arrivalProcess{
		p:            p,
		clusterRates: rates,
		spikes:       dist.Pareto{Xm: 1.5, Alpha: p.SpikeAlpha},
		smallNoise:   dist.MeanOneLogNormal(p.NoiseSigma),
		heavyNoise:   dist.MeanOneLogNormal(p.NoiseSigma * 0.8),
	}
}

// maxSpikeMultiplier truncates the Pareto burst multiplier. Figure 8's
// measured peak-to-median ratios top out at 260:1; an unbounded Pareto
// tail occasionally throws a single hour thousands of times over median
// rate, which no studied cluster exhibits — submission pipelines and
// client counts are finite.
const maxSpikeMultiplier = 120

// sampleSpike draws one truncated burst multiplier.
func (a *arrivalProcess) sampleSpike(rng *rand.Rand) float64 {
	return math.Min(a.spikes.Sample(rng), maxSpikeMultiplier)
}

// clusterCountsInHour fills counts[i] with the number of cluster-i jobs
// submitted in hour h since trace start, drawing from rng.
func (a *arrivalProcess) clusterCountsInHour(rng *rand.Rand, h int, counts []int) {
	p := a.p
	hourOfDay := float64(h % 24)
	// Weekend dip: days 5 and 6 of each week (traces start on a Monday).
	dayOfWeek := (h / 24) % 7
	weekend := dayOfWeek >= 5

	// Interactive stream: analyst-driven small jobs peak mid-afternoon and
	// dip hard on weekends.
	smallDiurnal := 1 + p.DiurnalAmplitude*math.Sin(2*math.Pi*(hourOfDay-9)/24)
	smallWeekly := 1.0
	if weekend {
		smallWeekly = 0.7
	}
	smallRate := a.clusterRates[0] * smallDiurnal * smallWeekly * a.smallNoise.Sample(rng)
	if rng.Float64() < p.SpikeProb {
		smallRate *= a.sampleSpike(rng)
	}
	counts[0] = dist.Poisson(rng, smallRate)

	// Batch stream: recurring pipelines lean toward night hours, run on
	// weekends too, and burst on their own schedule. One shared noise draw
	// per hour makes the heavy types co-burst, which is what couples the
	// byte and task-time series.
	heavyDiurnal := 1 + 0.5*p.DiurnalAmplitude*math.Sin(2*math.Pi*(hourOfDay-20)/24)
	heavyWeekly := 1.0
	if weekend {
		heavyWeekly = 0.9
	}
	heavyNoise := a.heavyNoise.Sample(rng)
	if rng.Float64() < p.SpikeProb {
		heavyNoise *= a.sampleSpike(rng)
	}
	for i := 1; i < len(a.clusterRates); i++ {
		rate := a.clusterRates[i] * heavyDiurnal * heavyWeekly * heavyNoise
		counts[i] = dist.Poisson(rng, rate)
	}
}
