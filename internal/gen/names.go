package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/profile"
)

// namer synthesizes job name strings in the styles of the frameworks the
// paper observes (§6.1): Hive and Pig generate names automatically, Oozie
// launches carry workflow ids, and native MapReduce jobs follow informal
// human conventions. Only the first word matters to the Figure 10
// analysis, but realistic suffixes exercise the first-word extraction.
type namer struct {
	p   *profile.Profile
	rng *rand.Rand
	// smallWeights and largeWeights are the name mixture conditioned on
	// job size class; LargeBias shifts data-centric words onto big jobs.
	smallWeights []float64
	largeWeights []float64
	seq          int64
}

func newNamer(p *profile.Profile, rng *rand.Rand) *namer {
	n := &namer{p: p, rng: rng}
	n.smallWeights = make([]float64, len(p.Names))
	n.largeWeights = make([]float64, len(p.Names))
	for i, e := range p.Names {
		n.smallWeights[i] = e.Weight
		n.largeWeights[i] = e.Weight * e.LargeBias
	}
	return n
}

// name generates a job name for a job in cluster ci.
func (n *namer) name(ci int, small bool) string {
	if len(n.p.Names) == 0 {
		return ""
	}
	weights := n.largeWeights
	if small {
		weights = n.smallWeights
	}
	e := n.p.Names[dist.WeightedChoice(n.rng, weights)]
	n.seq++
	switch e.Framework {
	case profile.FrameworkHive:
		// Hive generates names like "INSERT OVERWRITE TABLE x(Stage-1)".
		return fmt.Sprintf("%s overwrite table t_%04d(Stage-%d)", e.Word, n.rng.Intn(3000), 1+n.rng.Intn(4))
	case profile.FrameworkPig:
		return fmt.Sprintf("%s:job_%06d-%d", e.Word, n.seq, n.rng.Intn(10))
	case profile.FrameworkOozie:
		return fmt.Sprintf("%s:launcher:T=map-reduce:W=wf-%05d", e.Word, n.rng.Intn(100000))
	default:
		return fmt.Sprintf("%s_%04d_%02d", e.Word, n.rng.Intn(10000), n.rng.Intn(100))
	}
}
