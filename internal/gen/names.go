package gen

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dist"
	"repro/internal/profile"
)

// namer synthesizes job name strings in the styles of the frameworks the
// paper observes (§6.1): Hive and Pig generate names automatically, Oozie
// launches carry workflow ids, and native MapReduce jobs follow informal
// human conventions. Only the first word matters to the Figure 10
// analysis, but realistic suffixes exercise the first-word extraction.
//
// The namer is immutable after construction and draws exclusively from
// the rng handed in per call, so concurrent windows can name their jobs
// without coordination. Word selection uses alias tables — O(1) per draw
// instead of the former linear scan over the weight vector.
type namer struct {
	p *profile.Profile
	// small and large are the name mixtures conditioned on job size
	// class; LargeBias shifts data-centric words onto big jobs.
	small *dist.WeightedChoice
	large *dist.WeightedChoice
}

func newNamer(p *profile.Profile) *namer {
	n := &namer{p: p}
	if len(p.Names) == 0 {
		return n
	}
	smallWeights := make([]float64, len(p.Names))
	largeWeights := make([]float64, len(p.Names))
	for i, e := range p.Names {
		smallWeights[i] = e.Weight
		largeWeights[i] = e.Weight * e.LargeBias
	}
	var err error
	if n.small, err = dist.NewWeightedChoice(smallWeights); err != nil {
		// Profiles are validated before generation; a degenerate name
		// table here is a programming error.
		panic(err)
	}
	if n.large, err = dist.NewWeightedChoice(largeWeights); err != nil {
		// All-zero large biases degrade gracefully to the small mixture.
		n.large = n.small
	}
	return n
}

// name generates a job name for a job in cluster ci, drawing from rng.
// uniq is a trace-unique value (derived from the job's window and
// within-window index, so it is stable across parallelism levels) used
// where real frameworks embed a unique job id: Hive/native names repeat
// across recurring pipeline runs in genuine logs — that repetition is
// what Figure 10 groups by — but Pig's job_ counter never collides.
func (n *namer) name(rng *rand.Rand, ci int, small bool, uniq int64) string {
	if len(n.p.Names) == 0 {
		return ""
	}
	table := n.large
	if small {
		table = n.small
	}
	e := n.p.Names[table.Sample(rng)]
	switch e.Framework {
	case profile.FrameworkHive:
		// Hive generates names like "INSERT OVERWRITE TABLE x(Stage-1)".
		return fmt.Sprintf("%s overwrite table t_%04d(Stage-%d)", e.Word, rng.IntN(3000), 1+rng.IntN(4))
	case profile.FrameworkPig:
		return fmt.Sprintf("%s:job_%09d-%d", e.Word, uniq, rng.IntN(10))
	case profile.FrameworkOozie:
		return fmt.Sprintf("%s:launcher:T=map-reduce:W=wf-%05d", e.Word, rng.IntN(100000))
	default:
		return fmt.Sprintf("%s_%04d_%02d", e.Word, rng.IntN(10000), rng.IntN(100))
	}
}
