package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/units"
)

// The on-disk formats mirror what the study worked with: Hadoop history
// logs reduced to per-job summary rows. We support two codecs:
//
//   - JSONL: one JSON object per line, with a leading meta line. Lossless
//     and self-describing; the native format of cmd/swimgen.
//   - CSV: a flat table with a fixed header, interoperable with the SWIM
//     repository's trace format and spreadsheet tooling.

// jsonlHeader is the first line of a JSONL trace file.
type jsonlHeader struct {
	Format   string `json:"format"`
	Name     string `json:"name"`
	Machines int    `json:"machines"`
	Start    int64  `json:"start_unix"`
	LengthMS int64  `json:"length_ms"`
}

const jsonlFormat = "swim-trace-v1"

// WriteJSONL serializes the trace as a meta header line followed by one
// JSON job record per line.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	hdr := jsonlHeader{
		Format:   jsonlFormat,
		Name:     t.Meta.Name,
		Machines: t.Meta.Machines,
		Start:    t.Meta.Start.UnixMilli(),
		LengthMS: t.Meta.Length.Milliseconds(),
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, j := range t.Jobs {
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("trace: writing job %d: %w", j.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: parsing header: %w", err)
	}
	if hdr.Format != jsonlFormat {
		return nil, fmt.Errorf("trace: unknown format %q", hdr.Format)
	}
	t := New(Meta{
		Name:     hdr.Name,
		Machines: hdr.Machines,
		Start:    time.UnixMilli(hdr.Start).UTC(),
		Length:   time.Duration(hdr.LengthMS) * time.Millisecond,
	})
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Jobs = append(t.Jobs, &j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning: %w", err)
	}
	return t, nil
}

// csvHeader is the fixed column set of the CSV codec.
var csvHeader = []string{
	"id", "name", "submit_unix_ms", "duration_ms",
	"input_bytes", "shuffle_bytes", "output_bytes",
	"map_task_seconds", "reduce_task_seconds",
	"map_tasks", "reduce_tasks", "input_path", "output_path",
}

// WriteCSV serializes the job table (metadata is not representable in CSV;
// pair with a JSONL file or supply Meta at read time).
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing csv header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, j := range t.Jobs {
		row[0] = strconv.FormatInt(j.ID, 10)
		row[1] = j.Name
		row[2] = strconv.FormatInt(j.SubmitTime.UnixMilli(), 10)
		row[3] = strconv.FormatInt(j.Duration.Milliseconds(), 10)
		row[4] = strconv.FormatInt(int64(j.InputBytes), 10)
		row[5] = strconv.FormatInt(int64(j.ShuffleBytes), 10)
		row[6] = strconv.FormatInt(int64(j.OutputBytes), 10)
		row[7] = strconv.FormatFloat(float64(j.MapTime), 'f', -1, 64)
		row[8] = strconv.FormatFloat(float64(j.ReduceTime), 'f', -1, 64)
		row[9] = strconv.Itoa(j.MapTasks)
		row[10] = strconv.Itoa(j.ReduceTasks)
		row[11] = j.InputPath
		row[12] = j.OutputPath
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a job table written by WriteCSV, attaching the supplied
// metadata.
func ReadCSV(r io.Reader, meta Meta) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv header: %w", err)
	}
	for i, col := range csvHeader {
		if hdr[i] != col {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, hdr[i], col)
		}
	}
	t := New(meta)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		j, err := parseCSVRow(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		t.Jobs = append(t.Jobs, j)
	}
	return t, nil
}

func parseCSVRow(rec []string) (*Job, error) {
	id, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad id %q: %v", rec[0], err)
	}
	submitMS, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad submit time %q: %v", rec[2], err)
	}
	durMS, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad duration %q: %v", rec[3], err)
	}
	var sizes [3]int64
	for i := 0; i < 3; i++ {
		sizes[i], err = strconv.ParseInt(rec[4+i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad byte count %q: %v", rec[4+i], err)
		}
	}
	mapTime, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return nil, fmt.Errorf("bad map time %q: %v", rec[7], err)
	}
	reduceTime, err := strconv.ParseFloat(rec[8], 64)
	if err != nil {
		return nil, fmt.Errorf("bad reduce time %q: %v", rec[8], err)
	}
	mapTasks, err := strconv.Atoi(rec[9])
	if err != nil {
		return nil, fmt.Errorf("bad map tasks %q: %v", rec[9], err)
	}
	reduceTasks, err := strconv.Atoi(rec[10])
	if err != nil {
		return nil, fmt.Errorf("bad reduce tasks %q: %v", rec[10], err)
	}
	return &Job{
		ID:           id,
		Name:         rec[1],
		SubmitTime:   time.UnixMilli(submitMS).UTC(),
		Duration:     time.Duration(durMS) * time.Millisecond,
		InputBytes:   units.Bytes(sizes[0]),
		ShuffleBytes: units.Bytes(sizes[1]),
		OutputBytes:  units.Bytes(sizes[2]),
		MapTime:      units.TaskSeconds(mapTime),
		ReduceTime:   units.TaskSeconds(reduceTime),
		MapTasks:     mapTasks,
		ReduceTasks:  reduceTasks,
		InputPath:    rec[11],
		OutputPath:   rec[12],
	}, nil
}
