package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/units"
)

// The on-disk formats mirror what the study worked with: Hadoop history
// logs reduced to per-job summary rows. We support two codecs:
//
//   - JSONL: one JSON object per line, with a leading meta line. Lossless
//     and self-describing; the native format of cmd/swimgen. The per-job
//     hot path is the hand-rolled codec in jsonl.go.
//   - CSV: a flat table with a fixed header, interoperable with the SWIM
//     repository's trace format and spreadsheet tooling.
//
// Both codecs stream: JSONLWriter/CSVWriter are Sinks and
// JSONLReader/CSVReader are Sources, so whole-trace materialization is a
// convenience (WriteJSONL/ReadJSONL and friends), not a requirement.

// jsonlHeader is the first line of a JSONL trace file.
type jsonlHeader struct {
	Format   string `json:"format"`
	Name     string `json:"name"`
	Machines int    `json:"machines"`
	Start    int64  `json:"start_unix"`
	LengthMS int64  `json:"length_ms"`
}

const jsonlFormat = "swim-trace-v1"

// WriteJSONL serializes the trace as a meta header line followed by one
// JSON job record per line.
func WriteJSONL(w io.Writer, t *Trace) error {
	jw := NewJSONLWriter(w)
	if err := jw.Begin(t.Meta); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		if err := jw.Write(j); err != nil {
			return err
		}
	}
	return jw.Close()
}

// ReadJSONL parses a trace written by WriteJSONL into memory. For
// constant-memory access to large traces, use NewJSONLReader directly.
func ReadJSONL(r io.Reader) (*Trace, error) {
	jr, err := NewJSONLReader(r)
	if err != nil {
		return nil, err
	}
	return Collect(jr)
}

// csvHeader is the fixed column set of the CSV codec.
var csvHeader = []string{
	"id", "name", "submit_unix_ms", "duration_ms",
	"input_bytes", "shuffle_bytes", "output_bytes",
	"map_task_seconds", "reduce_task_seconds",
	"map_tasks", "reduce_tasks", "input_path", "output_path",
}

// CSVWriter is a streaming Sink writing the flat CSV job table. The
// metadata passed to Begin is not representable in CSV and is dropped;
// pair with a JSONL file or supply Meta at read time. Close must be
// called after the last Write.
type CSVWriter struct {
	cw    *csv.Writer
	row   []string
	began bool
}

// NewCSVWriter wraps w in a CSV trace writer.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w), row: make([]string, len(csvHeader))}
}

// Begin writes the column header.
func (w *CSVWriter) Begin(Meta) error {
	if w.began {
		return fmt.Errorf("trace: CSVWriter.Begin called twice")
	}
	w.began = true
	if err := w.cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing csv header: %w", err)
	}
	return nil
}

// Write appends one job row.
func (w *CSVWriter) Write(j *Job) error {
	if !w.began {
		return fmt.Errorf("trace: CSVWriter.Write before Begin")
	}
	row := w.row
	row[0] = strconv.FormatInt(j.ID, 10)
	row[1] = j.Name
	row[2] = strconv.FormatInt(j.SubmitTime.UnixMilli(), 10)
	row[3] = strconv.FormatInt(j.Duration.Milliseconds(), 10)
	row[4] = strconv.FormatInt(int64(j.InputBytes), 10)
	row[5] = strconv.FormatInt(int64(j.ShuffleBytes), 10)
	row[6] = strconv.FormatInt(int64(j.OutputBytes), 10)
	row[7] = strconv.FormatFloat(float64(j.MapTime), 'f', -1, 64)
	row[8] = strconv.FormatFloat(float64(j.ReduceTime), 'f', -1, 64)
	row[9] = strconv.Itoa(j.MapTasks)
	row[10] = strconv.Itoa(j.ReduceTasks)
	row[11] = j.InputPath
	row[12] = j.OutputPath
	if err := w.cw.Write(row); err != nil {
		return fmt.Errorf("trace: writing job %d: %w", j.ID, err)
	}
	return nil
}

// Close flushes buffered rows.
func (w *CSVWriter) Close() error {
	w.cw.Flush()
	return w.cw.Error()
}

// WriteCSV serializes the job table (metadata is not representable in CSV;
// pair with a JSONL file or supply Meta at read time).
func WriteCSV(w io.Writer, t *Trace) error {
	cw := NewCSVWriter(w)
	if err := cw.Begin(t.Meta); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		if err := cw.Write(j); err != nil {
			return err
		}
	}
	return cw.Close()
}

// CSVReader is a streaming Source reading the flat CSV job table, with
// caller-supplied metadata.
type CSVReader struct {
	cr   *csv.Reader
	meta Meta
	line int
}

// NewCSVReader validates the column header and returns a Source
// positioned at the first row.
func NewCSVReader(r io.Reader, meta Meta) (*CSVReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv header: %w", err)
	}
	for i, col := range csvHeader {
		if hdr[i] != col {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, hdr[i], col)
		}
	}
	return &CSVReader{cr: cr, meta: meta, line: 1}, nil
}

// Meta returns the metadata supplied at open time.
func (r *CSVReader) Meta() Meta { return r.meta }

// Next parses the next row or returns io.EOF.
func (r *CSVReader) Next() (*Job, error) {
	rec, err := r.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	r.line++
	if err != nil {
		return nil, fmt.Errorf("trace: csv line %d: %w", r.line, err)
	}
	j, err := parseCSVRow(rec)
	if err != nil {
		return nil, fmt.Errorf("trace: csv line %d: %w", r.line, err)
	}
	return j, nil
}

// ReadCSV parses a job table written by WriteCSV into memory, attaching
// the supplied metadata. For constant-memory access, use NewCSVReader.
func ReadCSV(r io.Reader, meta Meta) (*Trace, error) {
	cr, err := NewCSVReader(r, meta)
	if err != nil {
		return nil, err
	}
	return Collect(cr)
}

func parseCSVRow(rec []string) (*Job, error) {
	id, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad id %q: %v", rec[0], err)
	}
	submitMS, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad submit time %q: %v", rec[2], err)
	}
	durMS, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad duration %q: %v", rec[3], err)
	}
	var sizes [3]int64
	for i := 0; i < 3; i++ {
		sizes[i], err = strconv.ParseInt(rec[4+i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad byte count %q: %v", rec[4+i], err)
		}
	}
	mapTime, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return nil, fmt.Errorf("bad map time %q: %v", rec[7], err)
	}
	reduceTime, err := strconv.ParseFloat(rec[8], 64)
	if err != nil {
		return nil, fmt.Errorf("bad reduce time %q: %v", rec[8], err)
	}
	mapTasks, err := strconv.Atoi(rec[9])
	if err != nil {
		return nil, fmt.Errorf("bad map tasks %q: %v", rec[9], err)
	}
	reduceTasks, err := strconv.Atoi(rec[10])
	if err != nil {
		return nil, fmt.Errorf("bad reduce tasks %q: %v", rec[10], err)
	}
	return &Job{
		ID:           id,
		Name:         rec[1],
		SubmitTime:   time.UnixMilli(submitMS).UTC(),
		Duration:     time.Duration(durMS) * time.Millisecond,
		InputBytes:   units.Bytes(sizes[0]),
		ShuffleBytes: units.Bytes(sizes[1]),
		OutputBytes:  units.Bytes(sizes[2]),
		MapTime:      units.TaskSeconds(mapTime),
		ReduceTime:   units.TaskSeconds(reduceTime),
		MapTasks:     mapTasks,
		ReduceTasks:  reduceTasks,
		InputPath:    rec[11],
		OutputPath:   rec[12],
	}, nil
}
