package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func sampleTrace() *Trace {
	tr := New(Meta{Name: "CC-test", Machines: 42, Start: t0, Length: 48 * time.Hour})
	for i := 0; i < 25; i++ {
		j := mkJob(int64(i), time.Duration(i)*7*time.Minute)
		if i%3 == 0 {
			j.Name = ""
			j.InputPath = ""
			j.OutputPath = ""
		}
		if i%5 == 0 {
			j.ShuffleBytes, j.ReduceTime, j.ReduceTasks = 0, 0, 0
		}
		tr.Add(j)
	}
	return tr
}

func tracesEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.Meta.Name != b.Meta.Name || a.Meta.Machines != b.Meta.Machines {
		t.Fatalf("meta mismatch: %+v vs %+v", a.Meta, b.Meta)
	}
	if !a.Meta.Start.Equal(b.Meta.Start) || a.Meta.Length != b.Meta.Length {
		t.Fatalf("meta time mismatch: %+v vs %+v", a.Meta, b.Meta)
	}
	if a.Len() != b.Len() {
		t.Fatalf("job count %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Jobs {
		x, y := a.Jobs[i], b.Jobs[i]
		if x.ID != y.ID || x.Name != y.Name || !x.SubmitTime.Equal(y.SubmitTime) ||
			x.Duration != y.Duration || x.InputBytes != y.InputBytes ||
			x.ShuffleBytes != y.ShuffleBytes || x.OutputBytes != y.OutputBytes ||
			x.MapTime != y.MapTime || x.ReduceTime != y.ReduceTime ||
			x.MapTasks != y.MapTasks || x.ReduceTasks != y.ReduceTasks ||
			x.InputPath != y.InputPath || x.OutputPath != y.OutputPath {
			t.Fatalf("job %d mismatch:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, orig, back)
}

func TestJSONLEmptyTrace(t *testing.T) {
	orig := New(Meta{Name: "empty", Machines: 1, Start: t0, Length: time.Hour})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("expected empty trace, got %d jobs", back.Len())
	}
}

func TestJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header should error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"other"}` + "\n")); err == nil {
		t.Error("unknown format should error")
	}
	good := `{"format":"swim-trace-v1","name":"x","machines":1,"start_unix":0,"length_ms":1000}`
	if _, err := ReadJSONL(strings.NewReader(good + "\n{bad json\n")); err == nil {
		t.Error("garbage job line should error")
	}
	// Blank lines are tolerated.
	tr, err := ReadJSONL(strings.NewReader(good + "\n\n"))
	if err != nil {
		t.Fatalf("blank line: %v", err)
	}
	if tr.Len() != 0 {
		t.Error("blank line should not create a job")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, orig.Meta)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, orig, back)
}

func TestCSVErrors(t *testing.T) {
	meta := Meta{Name: "x"}
	if _, err := ReadCSV(strings.NewReader(""), meta); err == nil {
		t.Error("empty csv should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n"), meta); err == nil {
		t.Error("wrong column count should error")
	}
	wrongHeader := strings.Repeat("x,", 12) + "x\n"
	if _, err := ReadCSV(strings.NewReader(wrongHeader), meta); err == nil {
		t.Error("wrong header names should error")
	}
	// Build a header-correct file with one bad row.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, New(meta)); err != nil {
		t.Fatal(err)
	}
	bad := buf.String() + "notanumber,n,0,0,0,0,0,0,0,0,0,,\n"
	if _, err := ReadCSV(strings.NewReader(bad), meta); err == nil {
		t.Error("bad id should error")
	}
}

// Property: JSONL round-trip preserves arbitrary job dimension values.
func TestJSONLRoundTripQuick(t *testing.T) {
	f := func(id int64, in, sh, out int64, durMS int64, mt, rt float64, mtasks, rtasks uint16) bool {
		abs := func(x int64) int64 {
			if x < 0 {
				return -x
			}
			return x
		}
		fabs := func(x float64) float64 {
			if x < 0 || x != x { // negatives and NaN
				return 0
			}
			return x
		}
		j := &Job{
			ID:           abs(id),
			Name:         "q",
			SubmitTime:   t0,
			Duration:     time.Duration(abs(durMS)%1e9) * time.Millisecond,
			InputBytes:   units.Bytes(abs(in)),
			ShuffleBytes: units.Bytes(abs(sh)),
			OutputBytes:  units.Bytes(abs(out)),
			MapTime:      units.TaskSeconds(fabs(mt)),
			ReduceTime:   units.TaskSeconds(fabs(rt)),
			MapTasks:     int(mtasks),
			ReduceTasks:  int(rtasks),
		}
		tr := New(Meta{Name: "q", Machines: 1, Start: t0, Length: time.Hour})
		tr.Add(j)
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr); err != nil {
			return false
		}
		back, err := ReadJSONL(&buf)
		if err != nil || back.Len() != 1 {
			return false
		}
		g := back.Jobs[0]
		return g.ID == j.ID && g.InputBytes == j.InputBytes &&
			g.ShuffleBytes == j.ShuffleBytes && g.OutputBytes == j.OutputBytes &&
			g.Duration == j.Duration && g.MapTasks == j.MapTasks &&
			g.ReduceTasks == j.ReduceTasks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
