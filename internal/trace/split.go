package trace

import (
	"fmt"
	"io"
)

// Shard splitting: the scatter half of the shard-parallel analysis
// path. A trace is partitioned into K contiguous, ordered shards — the
// i-th shard holds the i-th run of jobs in stored (submit) order — and
// every shard Source carries the full trace's metadata, so per-shard
// analysis builders (hourly binning in particular) line up on the same
// origin and can be merged in shard order.

// shardSource yields one contiguous run of jobs under the parent
// trace's metadata.
type shardSource struct {
	meta Meta
	jobs []*Job
	i    int
}

// Meta returns the parent trace's metadata, not shard-local bounds:
// shard analyses must agree on the trace origin and length to merge.
func (s *shardSource) Meta() Meta { return s.meta }

// Next yields the next job or io.EOF.
func (s *shardSource) Next() (*Job, error) {
	if s.i >= len(s.jobs) {
		return nil, io.EOF
	}
	j := s.jobs[s.i]
	s.i++
	return j, nil
}

// SplitJobs partitions jobs into k contiguous shards sharing meta. Job
// pointers are shared, not copied; shard sizes differ by at most one
// (the first len(jobs)%k shards are one longer), so the partition is a
// deterministic function of (len(jobs), k). k exceeding the job count
// yields trailing empty shards, which merge as neutral elements.
func SplitJobs(meta Meta, jobs []*Job, k int) ([]Source, error) {
	if k < 1 {
		return nil, fmt.Errorf("trace: cannot split into %d shards", k)
	}
	out := make([]Source, k)
	n := len(jobs)
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + n/k
		if i < n%k {
			hi++
		}
		out[i] = &shardSource{meta: meta, jobs: jobs[lo:hi]}
		lo = hi
	}
	return out, nil
}

// SplitTrace partitions an in-memory trace into k contiguous ordered
// shards without copying jobs.
func SplitTrace(t *Trace, k int) ([]Source, error) {
	return SplitJobs(t.Meta, t.Jobs, k)
}

// Split drains src and partitions its jobs into k contiguous ordered
// shards. It trades memory for parallelism — the whole job set is held
// while the shards are analyzed, like Collect — so callers that cannot
// afford that should stay on the sequential streaming path.
func Split(src Source, k int) ([]Source, error) {
	if k < 1 {
		return nil, fmt.Errorf("trace: cannot split into %d shards", k)
	}
	t, err := Collect(src)
	if err != nil {
		return nil, err
	}
	return SplitTrace(t, k)
}
