package trace

import (
	"testing"
)

// TestHasherStateRoundTrip: a hasher serialized mid-stream and restored
// in "another process" must finish with the same fingerprint as one
// that saw the whole stream — the contract the cluster append
// coordinator relies on when it extends a distributed trace's
// fingerprint from persisted state.
func TestHasherStateRoundTrip(t *testing.T) {
	tr := sampleTrace()

	whole := NewHasher()
	if err := whole.Begin(tr.Meta); err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := whole.Write(j); err != nil {
			t.Fatal(err)
		}
	}

	split := len(tr.Jobs) / 2
	first := NewHasher()
	if err := first.Begin(tr.Meta); err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs[:split] {
		if err := first.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	state, err := first.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalHasher(state)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs[split:] {
		if err := restored.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := restored.Sum(), whole.Sum(); got != want {
		t.Fatalf("restored hasher fingerprint %s != one-shot %s", got, want)
	}

	// Begin must still be rejected on a restored post-Begin hasher.
	if err := restored.Begin(tr.Meta); err == nil {
		t.Fatal("restored hasher accepted a second Begin")
	}
}

// TestHasherStateFreshRoundTrip: serializing before Begin keeps the
// began flag clear, so the restored hasher accepts Begin.
func TestHasherStateFreshRoundTrip(t *testing.T) {
	state, err := NewHasher().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fh, err := UnmarshalHasher(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := fh.Begin(sampleTrace().Meta); err != nil {
		t.Fatalf("restored fresh hasher rejected Begin: %v", err)
	}
}

// TestHasherStateRejectsCorruption: truncated or version-skewed state
// must error, never silently produce a different digest.
func TestHasherStateRejectsCorruption(t *testing.T) {
	state, err := NewHasher().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"empty":      {},
		"one byte":   state[:1],
		"version":    append([]byte{99}, state[1:]...),
		"began flag": append([]byte{state[0], 7}, state[2:]...),
		"truncated":  state[:len(state)-4],
	} {
		if _, err := UnmarshalHasher(bad); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}
