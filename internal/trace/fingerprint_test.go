package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func fpTestTrace() *Trace {
	start := time.Date(2009, 5, 1, 0, 0, 0, 0, time.UTC)
	t := New(Meta{Name: "fp-test", Machines: 10, Start: start, Length: 4 * time.Hour})
	for i := 0; i < 5; i++ {
		t.Add(&Job{
			ID:           int64(i),
			Name:         "job-" + string(rune('a'+i)),
			SubmitTime:   start.Add(time.Duration(i) * 30 * time.Minute),
			Duration:     90 * time.Second,
			InputBytes:   units.Bytes(1000 * (i + 1)),
			ShuffleBytes: units.Bytes(100 * i),
			OutputBytes:  units.Bytes(10 * (i + 1)),
			MapTime:      units.TaskSeconds(12.5),
			ReduceTime:   units.TaskSeconds(float64(i)),
			MapTasks:     i + 1,
			ReduceTasks:  i,
			InputPath:    "/data/in",
			OutputPath:   "/data/out",
		})
	}
	return t
}

func TestFingerprintDeterministic(t *testing.T) {
	tr := fpTestTrace()
	a, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("want 64 hex digits, got %d (%s)", len(a), a)
	}
	for _, c := range a {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("non-hex digit %q in fingerprint %s", c, a)
		}
	}
}

// TestFingerprintSensitivity: every kind of content change — a field
// edit, a dropped job, an added job, different metadata — must move the
// hash. This is the collision behavior the cache relies on: distinct
// content must not share a key.
func TestFingerprintSensitivity(t *testing.T) {
	base, err := fpTestTrace().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"base": base}
	variants := map[string]func(*Trace){
		"field edit":    func(tr *Trace) { tr.Jobs[2].InputBytes++ },
		"name edit":     func(tr *Trace) { tr.Jobs[0].Name = "renamed" },
		"dropped job":   func(tr *Trace) { tr.Jobs = tr.Jobs[:len(tr.Jobs)-1] },
		"added job":     func(tr *Trace) { tr.Add(&Job{ID: 99, SubmitTime: tr.Meta.Start.Add(3 * time.Hour)}) },
		"meta name":     func(tr *Trace) { tr.Meta.Name = "other" },
		"meta machines": func(tr *Trace) { tr.Meta.Machines++ },
		"meta length":   func(tr *Trace) { tr.Meta.Length += time.Hour },
	}
	for label, mutate := range variants {
		tr := fpTestTrace()
		mutate(tr)
		fp, err := tr.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("%q collides with %q: %s", label, prev, fp)
			}
		}
		seen[label] = fp
	}
}

// TestFingerprintOrdering: the fingerprint covers job order, so two
// traces with the same job set in different order are distinct content
// (submit order is semantically meaningful — every streaming analysis
// depends on it).
func TestFingerprintOrdering(t *testing.T) {
	tr := fpTestTrace()
	// Give two jobs the same submit time so swapping them survives Sort.
	tr.Jobs[1].SubmitTime = tr.Jobs[2].SubmitTime
	a, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	tr.Jobs[1], tr.Jobs[2] = tr.Jobs[2], tr.Jobs[1]
	b, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("swapping two jobs did not change the fingerprint")
	}
}

// TestFingerprintRepresentationIndependent: a trace read back from a
// non-canonical JSONL file (reordered keys, whitespace, escapes — the
// encoding/json fallback path) fingerprints identically to the pristine
// in-memory trace, because the hash is over the canonical re-encoding.
func TestFingerprintRepresentationIndependent(t *testing.T) {
	tr := fpTestTrace()
	want, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Canonical file round-trip.
	var canonical bytes.Buffer
	if err := WriteJSONL(&canonical, tr); err != nil {
		t.Fatal(err)
	}
	src, err := NewJSONLReader(bytes.NewReader(canonical.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fingerprint(src)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("canonical round-trip fingerprint drifted: %s vs %s", got, want)
	}

	// Non-canonical representation of job 0: reordered keys, spaces, an
	// escaped name. Splice it over the canonical line and re-read.
	lines := bytes.SplitAfter(canonical.Bytes(), []byte("\n"))
	noncanon := `{ "name": "job-a", "id": 0, "submit_time": "2009-05-01T00:00:00Z", "duration": 90000000000, "input_bytes": 1000, "shuffle_bytes": 0, "output_bytes": 10, "map_time": 12.5, "reduce_time": 0, "map_tasks": 1, "reduce_tasks": 0, "input_path": "/data/in", "output_path": "/data/out" }` + "\n"
	var edited bytes.Buffer
	edited.Write(lines[0])
	edited.WriteString(noncanon)
	for _, l := range lines[2:] {
		edited.Write(l)
	}
	src2, err := NewJSONLReader(bytes.NewReader(edited.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Fingerprint(src2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Errorf("non-canonical representation changed the fingerprint: %s vs %s", got2, want)
	}
}

func TestHasherBeginTwice(t *testing.T) {
	fh := NewHasher()
	if err := fh.Begin(Meta{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := fh.Begin(Meta{Name: "x"}); err == nil {
		t.Error("second Begin should error")
	}
}
