package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
)

// Content fingerprints give every trace a stable identity derived from
// what the trace *says*, not how it happens to be represented: the hash
// is taken over the canonical JSONL encoding (the exact bytes
// JSONLWriter emits — header line plus one canonical job line per job),
// so a trace loaded from a hand-edited file with reordered keys, extra
// whitespace, or escape sequences fingerprints identically to the same
// trace freshly generated. Two traces fingerprint equal iff SaveTrace
// would write byte-identical JSONL files for them.
//
// The serving layer keys its result cache on this fingerprint: any job
// added, dropped, reordered, or edited changes the hash, so a cached
// analysis can never be served for data that drifted.

// Hasher is a Sink that folds a streamed trace into a content
// fingerprint. Feed it with Copy (or use the Fingerprint helpers); Sum
// may be called once the stream is exhausted.
type Hasher struct {
	h     hash.Hash
	buf   []byte
	began bool
}

// NewHasher returns a fingerprinting Sink.
func NewHasher() *Hasher {
	return &Hasher{h: sha256.New(), buf: make([]byte, 0, 512)}
}

// Begin folds the metadata header line into the hash.
func (fh *Hasher) Begin(meta Meta) error {
	if fh.began {
		return fmt.Errorf("trace: Hasher.Begin called twice")
	}
	fh.began = true
	hdr := jsonlHeader{
		Format:   jsonlFormat,
		Name:     meta.Name,
		Machines: meta.Machines,
		Start:    meta.Start.UnixMilli(),
		LengthMS: meta.Length.Milliseconds(),
	}
	b, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("trace: fingerprinting header: %w", err)
	}
	fh.h.Write(b)
	fh.h.Write([]byte{'\n'})
	return nil
}

// Write folds one job's canonical encoding into the hash.
func (fh *Hasher) Write(j *Job) error {
	b, err := appendJob(fh.buf[:0], j)
	if err != nil {
		return fmt.Errorf("trace: fingerprinting job %d: %w", j.ID, err)
	}
	fh.buf = b[:0]
	fh.h.Write(b)
	return nil
}

// Sum returns the fingerprint accumulated so far as a 64-hex-digit
// string. It does not reset the hasher.
func (fh *Hasher) Sum() string {
	return hex.EncodeToString(fh.h.Sum(nil))
}

// Fingerprint drains src and returns the content fingerprint of the
// streamed trace. The source is consumed; callers that also need the
// jobs should tee the stream through a Hasher themselves (see Copy and
// the multi-sink pattern in internal/server).
func Fingerprint(src Source) (string, error) {
	fh := NewHasher()
	if _, err := Copy(fh, src); err != nil {
		return "", err
	}
	return fh.Sum(), nil
}

// Fingerprint returns the content fingerprint of the in-memory trace.
func (t *Trace) Fingerprint() (string, error) {
	return Fingerprint(NewSliceSource(t))
}
