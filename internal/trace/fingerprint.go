package trace

import (
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
)

// Content fingerprints give every trace a stable identity derived from
// what the trace *says*, not how it happens to be represented: the hash
// is taken over the canonical JSONL encoding (the exact bytes
// JSONLWriter emits — header line plus one canonical job line per job),
// so a trace loaded from a hand-edited file with reordered keys, extra
// whitespace, or escape sequences fingerprints identically to the same
// trace freshly generated. Two traces fingerprint equal iff SaveTrace
// would write byte-identical JSONL files for them.
//
// The serving layer keys its result cache on this fingerprint: any job
// added, dropped, reordered, or edited changes the hash, so a cached
// analysis can never be served for data that drifted.

// Hasher is a Sink that folds a streamed trace into a content
// fingerprint. Feed it with Copy (or use the Fingerprint helpers); Sum
// may be called once the stream is exhausted.
type Hasher struct {
	h     hash.Hash
	buf   []byte
	began bool
}

// NewHasher returns a fingerprinting Sink.
func NewHasher() *Hasher {
	return &Hasher{h: sha256.New(), buf: make([]byte, 0, 512)}
}

// Begin folds the metadata header line into the hash.
func (fh *Hasher) Begin(meta Meta) error {
	if fh.began {
		return fmt.Errorf("trace: Hasher.Begin called twice")
	}
	fh.began = true
	hdr := jsonlHeader{
		Format:   jsonlFormat,
		Name:     meta.Name,
		Machines: meta.Machines,
		Start:    meta.Start.UnixMilli(),
		LengthMS: meta.Length.Milliseconds(),
	}
	b, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("trace: fingerprinting header: %w", err)
	}
	fh.h.Write(b)
	fh.h.Write([]byte{'\n'})
	return nil
}

// Write folds one job's canonical encoding into the hash.
func (fh *Hasher) Write(j *Job) error {
	b, err := appendJob(fh.buf[:0], j)
	if err != nil {
		return fmt.Errorf("trace: fingerprinting job %d: %w", j.ID, err)
	}
	fh.buf = b[:0]
	fh.h.Write(b)
	return nil
}

// Sum returns the fingerprint accumulated so far as a 64-hex-digit
// string. It does not reset the hasher.
func (fh *Hasher) Sum() string {
	return hex.EncodeToString(fh.h.Sum(nil))
}

// hasherStateVersion versions the serialized Hasher state. The payload
// embeds crypto/sha256's own versioned digest marshaling, so this only
// covers the envelope (began flag + digest state).
const hasherStateVersion = 1

// MarshalBinary captures the hasher's streaming state — the SHA-256
// midstate plus whether Begin ran — so fingerprinting can continue in
// another process exactly where this one stopped. A cluster's append
// coordinator persists this with the trace's shard-placement metadata:
// extending a distributed trace extends the restored hasher, and K
// batched cluster appends commit the exact one-shot fingerprint, the
// same contract the single-node append session keeps in memory.
func (fh *Hasher) MarshalBinary() ([]byte, error) {
	m, ok := fh.h.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("trace: hash state is not serializable")
	}
	st, err := m.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("trace: marshaling hash state: %w", err)
	}
	out := make([]byte, 0, 2+len(st))
	out = append(out, hasherStateVersion)
	if fh.began {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return append(out, st...), nil
}

// UnmarshalHasher restores a Hasher from MarshalBinary output. The
// restored hasher continues the stream: Write extends the same digest,
// Sum reports the same fingerprint the original would have.
func UnmarshalHasher(data []byte) (*Hasher, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("trace: hasher state truncated (%d bytes)", len(data))
	}
	if data[0] != hasherStateVersion {
		return nil, fmt.Errorf("trace: hasher state version %d (want %d)", data[0], hasherStateVersion)
	}
	if data[1] > 1 {
		return nil, fmt.Errorf("trace: hasher state began flag %d is not a boolean", data[1])
	}
	fh := NewHasher()
	u, ok := fh.h.(encoding.BinaryUnmarshaler)
	if !ok {
		return nil, fmt.Errorf("trace: hash state is not serializable")
	}
	if err := u.UnmarshalBinary(data[2:]); err != nil {
		return nil, fmt.Errorf("trace: restoring hash state: %w", err)
	}
	fh.began = data[1] == 1
	return fh, nil
}

// Fingerprint drains src and returns the content fingerprint of the
// streamed trace. The source is consumed; callers that also need the
// jobs should tee the stream through a Hasher themselves (see Copy and
// the multi-sink pattern in internal/server).
func Fingerprint(src Source) (string, error) {
	fh := NewHasher()
	if _, err := Copy(fh, src); err != nil {
		return "", err
	}
	return fh.Sum(), nil
}

// Fingerprint returns the content fingerprint of the in-memory trace.
func (t *Trace) Fingerprint() (string, error) {
	return Fingerprint(NewSliceSource(t))
}
