package trace

import (
	"fmt"
	"io"
	"time"
)

// The streaming layer: a Trace held fully in memory is convenient for the
// random-access analyses (k-means clustering, file-popularity maps), but
// the paper's traces are months long — FB-2009 alone spans six months and
// >1.1M jobs — and holding every record defeats production-scale runs.
// Source and Sink are the job-stream contract the generator, the codecs,
// and the streaming analyses share: jobs flow one at a time, in submit
// order, with the Table-1 metadata known up front.

// Source yields the jobs of one workload trace in submit order. Next
// returns io.EOF after the final job. Implementations are not safe for
// concurrent use.
type Source interface {
	// Meta returns the trace metadata. For formats that carry no
	// metadata (CSV), it is whatever the caller supplied at open time.
	Meta() Meta
	// Next returns the next job, or (nil, io.EOF) when the stream is
	// exhausted. The returned Job is owned by the caller.
	Next() (*Job, error)
}

// Sink receives the jobs of one workload trace in submit order. Begin is
// called exactly once, before the first Write. Implementations that
// buffer (file writers) expose a Close/Flush of their own; Sink itself is
// only the per-job hot path.
type Sink interface {
	Begin(meta Meta) error
	Write(j *Job) error
}

// SliceSource adapts an in-memory Trace to the Source interface.
type SliceSource struct {
	t *Trace
	i int
}

// NewSliceSource returns a Source yielding t's jobs in stored order.
func NewSliceSource(t *Trace) *SliceSource { return &SliceSource{t: t} }

// Meta returns the trace metadata.
func (s *SliceSource) Meta() Meta { return s.t.Meta }

// Next yields the next job or io.EOF.
func (s *SliceSource) Next() (*Job, error) {
	if s.i >= len(s.t.Jobs) {
		return nil, io.EOF
	}
	j := s.t.Jobs[s.i]
	s.i++
	return j, nil
}

// WindowSource filters an underlying Source to the jobs submitted in
// [from, to) — the exact-boundary pass over a scan the storage layer
// has already pruned conservatively at segment and block granularity.
// Meta reports the window's own metadata (start = from, length =
// to−from), so downstream partial builders bin relative to the window.
// Close forwards to the underlying source when it has one.
type WindowSource struct {
	src      Source
	meta     Meta
	from, to int64 // UnixNano bounds
}

// NewWindowSource wraps src with the [from, to) submit-time filter,
// presenting meta as the stream's metadata.
func NewWindowSource(src Source, meta Meta, from, to time.Time) *WindowSource {
	return &WindowSource{src: src, meta: meta, from: from.UnixNano(), to: to.UnixNano()}
}

// Meta returns the window's metadata.
func (w *WindowSource) Meta() Meta { return w.meta }

// Next yields the next in-window job or io.EOF.
func (w *WindowSource) Next() (*Job, error) {
	for {
		j, err := w.src.Next()
		if err != nil {
			return nil, err
		}
		ns := j.SubmitTime.UnixNano()
		if ns >= w.from && ns < w.to {
			return j, nil
		}
	}
}

// Close abandons the underlying stream when it is closable.
func (w *WindowSource) Close() error {
	if cl, ok := w.src.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// CollectSink materializes a streamed trace. The zero value is ready to
// use; Trace() returns the accumulated result.
type CollectSink struct {
	t *Trace
}

// Begin records the metadata.
func (c *CollectSink) Begin(meta Meta) error {
	c.t = New(meta)
	return nil
}

// Write appends the job.
func (c *CollectSink) Write(j *Job) error {
	if c.t == nil {
		c.t = New(Meta{})
	}
	c.t.Add(j)
	return nil
}

// Trace returns the collected trace (never nil).
func (c *CollectSink) Trace() *Trace {
	if c.t == nil {
		c.t = New(Meta{})
	}
	return c.t
}

// Collect drains a Source into an in-memory Trace.
func Collect(src Source) (*Trace, error) {
	t := New(src.Meta())
	for {
		j, err := src.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Add(j)
	}
}

// Copy streams every job from src into dst (calling Begin first) and
// returns the number of jobs copied.
func Copy(dst Sink, src Source) (int, error) {
	if err := dst.Begin(src.Meta()); err != nil {
		return 0, err
	}
	n := 0
	for {
		j, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Write(j); err != nil {
			return n, err
		}
		n++
	}
}

// SummaryAccumulator computes a Table-1 Summary row incrementally, so a
// streamed trace can be summarized without materializing it. It produces
// exactly what Trace.Summarize produces on the materialized equivalent.
type SummaryAccumulator struct {
	s Summary
}

// NewSummaryAccumulator starts a summary for the given metadata.
func NewSummaryAccumulator(meta Meta) *SummaryAccumulator {
	return &SummaryAccumulator{s: Summary{
		Name:     meta.Name,
		Machines: meta.Machines,
		Length:   meta.Length,
	}}
}

// Observe folds one job into the summary.
func (a *SummaryAccumulator) Observe(j *Job) {
	a.s.Jobs++
	a.s.BytesMoved += j.TotalBytes()
}

// Merge folds another accumulator into this one. Both must describe the
// same trace (name, machines, length); the counters are integers, so
// merging per-shard summaries in any order is exactly the sequential
// result. The argument is not modified.
func (a *SummaryAccumulator) Merge(o *SummaryAccumulator) error {
	if a.s.Name != o.s.Name || a.s.Machines != o.s.Machines || a.s.Length != o.s.Length {
		return fmt.Errorf("trace: cannot merge summaries of different traces (%q/%d/%v vs %q/%d/%v)",
			a.s.Name, a.s.Machines, a.s.Length, o.s.Name, o.s.Machines, o.s.Length)
	}
	a.s.Jobs += o.s.Jobs
	a.s.BytesMoved += o.s.BytesMoved
	return nil
}

// Summary returns the accumulated Table-1 row.
func (a *SummaryAccumulator) Summary() Summary { return a.s }

// RestoreSummaryAccumulator rebuilds an accumulator from a previously
// captured Summary — the durable-snapshot path: counters are plain
// integers, so Summary() is the accumulator's complete state.
func RestoreSummaryAccumulator(s Summary) *SummaryAccumulator {
	return &SummaryAccumulator{s: s}
}
