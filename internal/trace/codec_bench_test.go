package trace

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/units"
)

// benchTrace builds a deterministic, generator-shaped trace without
// importing internal/gen (which would cycle): mostly small jobs with
// name/path strings, a heavy tail of large ones.
func benchTrace(n int) *Trace {
	tr := New(Meta{Name: "bench", Machines: 600, Start: t0, Length: 24 * time.Hour})
	words := []string{"ad", "insert", "select", "from", "etl", "queryresult"}
	for i := 0; i < n; i++ {
		scale := int64(1 + i%7)
		j := &Job{
			ID:           int64(i + 1),
			Name:         fmt.Sprintf("%s_%04x_stage", words[i%len(words)], i),
			SubmitTime:   t0.Add(time.Duration(i) * 77 * time.Millisecond),
			Duration:     time.Duration(30+i%900) * time.Second,
			InputBytes:   units.Bytes(21_000 * scale * scale * scale),
			ShuffleBytes: units.Bytes(1_000 * scale * scale),
			OutputBytes:  units.Bytes(871_000 * scale),
			MapTime:      units.TaskSeconds(float64(20*scale) + 0.25*float64(i%4)),
			ReduceTime:   units.TaskSeconds(float64(5*scale) + 0.5*float64(i%2)),
			MapTasks:     1 + i%30,
			ReduceTasks:  i % 3,
		}
		if i%4 != 0 {
			j.InputPath = fmt.Sprintf("/data/warehouse/part-%05d", i%997)
			j.OutputPath = fmt.Sprintf("/tmp/out/job-%d", i)
		}
		tr.Add(j)
	}
	return tr
}

const benchJobs = 20000

// BenchmarkCodecEncode measures the hand-rolled JSONL encoder;
// BenchmarkCodecEncodeStd is the encoding/json baseline it replaced. The
// streaming tentpole requires ≥3x combined throughput over the baseline.
func BenchmarkCodecEncode(b *testing.B) {
	tr := benchTrace(benchJobs)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteJSONL(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeStd(b *testing.B) {
	tr := benchTrace(benchJobs)
	var buf bytes.Buffer
	if err := writeJSONLStd(&buf, tr); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeJSONLStd(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecode measures the field-scanning JSONL decoder against
// the encoding/json baseline, materialization included in both.
func BenchmarkCodecDecode(b *testing.B) {
	tr := benchTrace(benchJobs)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadJSONL(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeStd(b *testing.B) {
	tr := benchTrace(benchJobs)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := readJSONLStd(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecodeStream measures the pure streaming path: no
// materialization, jobs visited and dropped.
func BenchmarkCodecDecodeStream(b *testing.B) {
	tr := benchTrace(benchJobs)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := NewJSONLReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			j, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			_ = j
		}
	}
}
