package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func eraT(name string, start time.Time, n int) *Trace {
	tr := New(Meta{Name: name, Machines: 100, Start: start, Length: 2 * time.Hour})
	for i := 0; i < n; i++ {
		tr.Add(&Job{
			ID:         int64(i + 1),
			SubmitTime: start.Add(time.Duration(i) * time.Minute),
			Duration:   time.Minute,
			InputBytes: units.MB,
			MapTasks:   1,
			MapTime:    10,
			InputPath:  "/data/in",
			OutputPath: "/data/out",
		})
	}
	return tr
}

func TestMergeBasics(t *testing.T) {
	s1 := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	s2 := s1.Add(3 * time.Hour)
	a := eraT("wl-a", s1, 10)
	b := eraT("wl-b", s2, 20)
	m, err := Merge("consolidated", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 30 {
		t.Fatalf("merged jobs = %d, want 30", m.Len())
	}
	if m.Meta.Machines != 200 {
		t.Errorf("machines = %d, want 200 (summed)", m.Meta.Machines)
	}
	if !m.Meta.Start.Equal(s1) {
		t.Errorf("start = %v, want earliest %v", m.Meta.Start, s1)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	// Time alignment: wl-b's jobs are shifted onto wl-a's start.
	for _, j := range m.Jobs {
		if j.SubmitTime.Before(s1) || j.SubmitTime.After(s1.Add(time.Hour)) {
			t.Fatalf("job %d at %v outside aligned window", j.ID, j.SubmitTime)
		}
	}
	// Path namespaces stay disjoint.
	sawA, sawB := false, false
	for _, j := range m.Jobs {
		if strings.HasPrefix(j.InputPath, "/wl-a/") {
			sawA = true
		}
		if strings.HasPrefix(j.InputPath, "/wl-b/") {
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Error("merged paths should be prefixed per source workload")
	}
	// IDs renumbered sequentially.
	for i, j := range m.Jobs {
		if j.ID != int64(i+1) {
			t.Fatalf("IDs not renumbered: job %d has ID %d", i, j.ID)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	s := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	a := eraT("a", s, 5)
	if _, err := Merge("m", a); err == nil {
		t.Error("single trace should error")
	}
	if _, err := Merge("m", a, New(Meta{Name: "empty", Start: s})); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := Merge("m", a, nil); err == nil {
		t.Error("nil trace should error")
	}
}

func TestMergeDoesNotMutateSources(t *testing.T) {
	s := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	a := eraT("a", s, 3)
	b := eraT("b", s.Add(time.Hour), 3)
	origPath := a.Jobs[0].InputPath
	origID := b.Jobs[2].ID
	if _, err := Merge("m", a, b); err != nil {
		t.Fatal(err)
	}
	if a.Jobs[0].InputPath != origPath {
		t.Error("merge mutated source paths")
	}
	if b.Jobs[2].ID != origID {
		t.Error("merge mutated source IDs")
	}
}
