package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fuzzSeedJSONL returns valid JSONL corpora: canonical encoder output,
// fallback-shaped lines, and edge-case values.
func fuzzSeedJSONL(t interface{ Fatal(...any) }) [][]byte {
	var seeds [][]byte
	add := func(tr *Trace) {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr); err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	tr := New(Meta{Name: "seed", Machines: 4, Start: time.Date(2009, 5, 4, 0, 0, 0, 0, time.UTC), Length: 2 * time.Hour})
	for i := int64(1); i <= 5; i++ {
		j := mkJob(i, time.Duration(i)*time.Minute)
		if i%2 == 0 {
			j.Name, j.InputPath, j.OutputPath = "", "", ""
		}
		tr.Add(j)
	}
	add(tr)
	add(New(Meta{Name: "empty", Machines: 1, Start: time.Unix(0, 0).UTC(), Length: time.Hour}))
	hdr := `{"format":"swim-trace-v1","name":"x","machines":1,"start_unix":0,"length_ms":1000}`
	seeds = append(seeds,
		[]byte(hdr+"\n"),
		[]byte(hdr+"\n{\"id\":1,\"future_field\":true,\"submit_time\":\"2011-03-01T00:00:00Z\"}\n"),
		[]byte(hdr+"\n{ \"id\": 2 , \"name\": \"esc\\u0041ped\" }\n"),
		[]byte(hdr+"\n\n\n"),
		[]byte("not json\n"),
		[]byte(`{"format":"other"}`+"\n"),
		[]byte(hdr+"\n{\"id\":9999999999999999999999}\n"),
		[]byte(hdr+"\n{\"map_time\":1e999}\n"),
	)
	return seeds
}

// FuzzReadJSONL: arbitrary input must either fail with an error or parse;
// it must never panic. Parsed traces must re-encode deterministically:
// encode∘decode reaches a byte-stable fixed point after one application
// (the first encode may normalize, e.g. invalid UTF-8 and escapes).
func FuzzReadJSONL(f *testing.F) {
	for _, s := range fuzzSeedJSONL(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		if err := WriteJSONL(&once, tr); err != nil {
			// Decoded values can be unencodable (e.g. a year ≥ 10000 is
			// unreachable, but a NaN never is); an error is acceptable,
			// a panic is not.
			return
		}
		back, err := ReadJSONL(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-reading our own encoding failed: %v\nencoded: %q", err, once.Bytes())
		}
		var twice bytes.Buffer
		if err := WriteJSONL(&twice, back); err != nil {
			t.Fatalf("re-encoding our own decoding failed: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("encode∘decode is not byte-stable:\n first: %q\nsecond: %q", once.Bytes(), twice.Bytes())
		}
		// The fast path and the reference decoder must agree on our own
		// canonical encoding.
		ref, err := readJSONLStd(bytes.NewReader(once.Bytes()))
		if err != nil {
			// The reference decoder still has the 4 MiB line cap; only a
			// line-length failure is excusable.
			if !strings.Contains(err.Error(), "token too long") {
				t.Fatalf("reference decoder rejected canonical encoding: %v", err)
			}
			return
		}
		if len(ref.Jobs) != len(back.Jobs) {
			t.Fatalf("fast path decoded %d jobs, reference %d", len(back.Jobs), len(ref.Jobs))
		}
	})
}

// FuzzReadCSV: same contract for the CSV codec.
func FuzzReadCSV(f *testing.F) {
	meta := Meta{Name: "fuzz", Machines: 2, Start: time.Unix(0, 0).UTC(), Length: time.Hour}
	tr := New(meta)
	for i := int64(1); i <= 3; i++ {
		tr.Add(mkJob(i, time.Duration(i)*time.Minute))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	hdr := strings.Join(csvHeader, ",") + "\n"
	f.Add([]byte(hdr))
	f.Add([]byte(hdr + "1,n,0,0,0,0,0,0,0,0,0,,\n"))
	f.Add([]byte(hdr + "x,n,0,0,0,0,0,0,0,0,0,,\n"))
	f.Add([]byte(hdr + "1,\"quoted,name\",0,0,0,0,0,1.5,2.5,0,0,/a,/b\n"))
	f.Add([]byte("a,b\n1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data), meta)
		if err != nil {
			return
		}
		var once bytes.Buffer
		if err := WriteCSV(&once, tr); err != nil {
			return
		}
		back, err := ReadCSV(bytes.NewReader(once.Bytes()), meta)
		if err != nil {
			t.Fatalf("re-reading our own CSV failed: %v\nencoded: %q", err, once.Bytes())
		}
		var twice bytes.Buffer
		if err := WriteCSV(&twice, back); err != nil {
			t.Fatalf("re-encoding our own CSV failed: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("CSV encode∘decode is not byte-stable:\n first: %q\nsecond: %q", once.Bytes(), twice.Bytes())
		}
	})
}
