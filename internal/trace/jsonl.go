package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
	"unicode/utf8"

	"repro/internal/units"
)

// Hand-rolled JSONL job codec. encoding/json's reflection walk dominated
// both generation (encode) and load (decode) once traces reached paper
// length, so the per-job hot path is a direct append-based encoder and a
// field-scanning decoder. The encoder emits byte-for-byte what
// encoding/json emits for the Job struct (same field order, omitempty,
// float formatting, string escaping), so files are indistinguishable from
// v1 files. The decoder fast-path handles exactly that canonical shape;
// any other valid JSON — unknown fields, escape sequences, reordered
// keys, whitespace — falls back to encoding/json for the line, so v1 and
// hand-edited files still load with identical semantics.

// JSONLWriter is a streaming Sink writing the native JSONL trace format.
// Close (or Flush) must be called after the last Write.
type JSONLWriter struct {
	bw    *bufio.Writer
	buf   []byte
	began bool
}

// NewJSONLWriter wraps w in a buffered JSONL trace writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 512)}
}

// Begin writes the meta header line.
func (w *JSONLWriter) Begin(meta Meta) error {
	if w.began {
		return fmt.Errorf("trace: JSONLWriter.Begin called twice")
	}
	w.began = true
	hdr := jsonlHeader{
		Format:   jsonlFormat,
		Name:     meta.Name,
		Machines: meta.Machines,
		Start:    meta.Start.UnixMilli(),
		LengthMS: meta.Length.Milliseconds(),
	}
	// The header is one line per file; encoding/json is fine here and
	// keeps the emitted bytes identical to the v1 writer.
	b, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	return w.bw.WriteByte('\n')
}

// Write appends one job record line.
func (w *JSONLWriter) Write(j *Job) error {
	if !w.began {
		return fmt.Errorf("trace: JSONLWriter.Write before Begin")
	}
	b, err := appendJob(w.buf[:0], j)
	if err != nil {
		return fmt.Errorf("trace: writing job %d: %w", j.ID, err)
	}
	w.buf = b[:0]
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("trace: writing job %d: %w", j.ID, err)
	}
	return nil
}

// Close flushes buffered output. It does not close the underlying writer.
func (w *JSONLWriter) Close() error { return w.bw.Flush() }

// JSONLReader is a streaming Source reading the native JSONL trace
// format. Lines may be arbitrarily long: the reader grows its line buffer
// as needed instead of imposing bufio.Scanner's fixed token limit.
type JSONLReader struct {
	br   *bufio.Reader
	meta Meta
	buf  []byte
	line int
}

// NewJSONLReader reads and validates the header line and returns a
// Source positioned at the first job record.
func NewJSONLReader(r io.Reader) (*JSONLReader, error) {
	jr := &JSONLReader{br: bufio.NewReaderSize(r, 1<<16), buf: make([]byte, 0, 512)}
	b, err := readLine(jr.br, jr.buf)
	if err == io.EOF {
		return nil, fmt.Errorf("trace: empty input")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	jr.buf = b
	jr.line = 1
	var hdr jsonlHeader
	if err := json.Unmarshal(b, &hdr); err != nil {
		return nil, fmt.Errorf("trace: parsing header: %w", err)
	}
	if hdr.Format != jsonlFormat {
		return nil, fmt.Errorf("trace: unknown format %q", hdr.Format)
	}
	jr.meta = Meta{
		Name:     hdr.Name,
		Machines: hdr.Machines,
		Start:    time.UnixMilli(hdr.Start).UTC(),
		Length:   time.Duration(hdr.LengthMS) * time.Millisecond,
	}
	return jr, nil
}

// NewJSONLBodyReader returns a Source over headerless job-record lines
// with caller-supplied metadata — the segment files of the durable
// storage engine, which keep the Table-1 metadata in the per-trace
// manifest instead of repeating a header line per segment.
func NewJSONLBodyReader(r io.Reader, meta Meta) *JSONLReader {
	return &JSONLReader{br: bufio.NewReaderSize(r, 1<<16), buf: make([]byte, 0, 512), meta: meta}
}

// Meta returns the header metadata.
func (r *JSONLReader) Meta() Meta { return r.meta }

// Next decodes the next job record, skipping blank lines, or returns
// io.EOF at end of input.
func (r *JSONLReader) Next() (*Job, error) {
	for {
		b, err := readLine(r.br, r.buf)
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, fmt.Errorf("trace: scanning: %w", err)
		}
		r.buf = b
		r.line++
		if len(b) == 0 {
			continue
		}
		j := new(Job)
		if !parseJob(b, j) {
			// Non-canonical line: let encoding/json decide, so unknown
			// fields are tolerated and malformed input gets the
			// standard library's error text.
			*j = Job{}
			if uerr := json.Unmarshal(b, j); uerr != nil {
				return nil, fmt.Errorf("trace: line %d: %w", r.line, uerr)
			}
		}
		return j, nil
	}
}

// readLine returns the next newline-terminated line (newline and any
// trailing \r stripped), reusing buf's capacity. There is no line-length
// cap: fragments are accumulated across bufio fills, which is what lets
// jobs with multi-megabyte path or name strings round-trip (the previous
// bufio.Scanner implementation failed at 4 MiB with an opaque
// "token too long"). Returns io.EOF only when no bytes remain.
func readLine(br *bufio.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		switch err {
		case nil:
			buf = buf[:len(buf)-1] // strip '\n'
			if n := len(buf); n > 0 && buf[n-1] == '\r' {
				buf = buf[:n-1]
			}
			return buf, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) == 0 {
				return buf, io.EOF
			}
			return buf, nil // final line without trailing newline
		default:
			return buf, err
		}
	}
}

// AppendJobLine appends the canonical JSONL encoding of j to b — the
// exact bytes JSONLWriter and the fingerprint Hasher produce per job,
// newline included. The durable storage engine writes segment files
// through it so segment bytes are the canonical representation (and so
// segment CRCs are stable across writers).
func AppendJobLine(b []byte, j *Job) ([]byte, error) {
	return appendJob(b, j)
}

// appendJob appends the canonical JSONL encoding of j — exactly the bytes
// encoding/json produces for the Job struct, newline-terminated.
func appendJob(b []byte, j *Job) ([]byte, error) {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, j.ID, 10)
	if j.Name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, j.Name)
	}
	b = append(b, `,"submit_time":`...)
	var err error
	b, err = appendJSONTime(b, j.SubmitTime)
	if err != nil {
		return nil, err
	}
	b = append(b, `,"duration":`...)
	b = strconv.AppendInt(b, int64(j.Duration), 10)
	b = append(b, `,"input_bytes":`...)
	b = strconv.AppendInt(b, int64(j.InputBytes), 10)
	b = append(b, `,"shuffle_bytes":`...)
	b = strconv.AppendInt(b, int64(j.ShuffleBytes), 10)
	b = append(b, `,"output_bytes":`...)
	b = strconv.AppendInt(b, int64(j.OutputBytes), 10)
	b = append(b, `,"map_time":`...)
	b, err = appendJSONFloat(b, float64(j.MapTime))
	if err != nil {
		return nil, err
	}
	b = append(b, `,"reduce_time":`...)
	b, err = appendJSONFloat(b, float64(j.ReduceTime))
	if err != nil {
		return nil, err
	}
	b = append(b, `,"map_tasks":`...)
	b = strconv.AppendInt(b, int64(j.MapTasks), 10)
	b = append(b, `,"reduce_tasks":`...)
	b = strconv.AppendInt(b, int64(j.ReduceTasks), 10)
	if j.InputPath != "" {
		b = append(b, `,"input_path":`...)
		b = appendJSONString(b, j.InputPath)
	}
	if j.OutputPath != "" {
		b = append(b, `,"output_path":`...)
		b = appendJSONString(b, j.OutputPath)
	}
	b = append(b, '}', '\n')
	return b, nil
}

// appendJSONTime appends the RFC3339Nano-quoted encoding time.Time
// marshals to, enforcing the same year range. UTC times — every
// generated trace — take a direct formatting path; other zones fall back
// to time.AppendFormat.
func appendJSONTime(b []byte, t time.Time) ([]byte, error) {
	year, month, day := t.Date()
	if year < 0 || year >= 10000 {
		// Matches time.Time.MarshalJSON: RFC 3339 is clear that years
		// are 4 digits exactly.
		return nil, fmt.Errorf("year outside of range [0,9999]")
	}
	b = append(b, '"')
	if t.Location() != time.UTC {
		b = t.AppendFormat(b, time.RFC3339Nano)
		return append(b, '"'), nil
	}
	hour, min, sec := t.Clock()
	b = append4Digits(b, year)
	b = append(b, '-')
	b = append2Digits(b, int(month))
	b = append(b, '-')
	b = append2Digits(b, day)
	b = append(b, 'T')
	b = append2Digits(b, hour)
	b = append(b, ':')
	b = append2Digits(b, min)
	b = append(b, ':')
	b = append2Digits(b, sec)
	if ns := t.Nanosecond(); ns != 0 {
		// RFC3339Nano trims trailing fractional zeros.
		b = append(b, '.')
		var digits [9]byte
		for i := 8; i >= 0; i-- {
			digits[i] = byte('0' + ns%10)
			ns /= 10
		}
		n := 9
		for digits[n-1] == '0' {
			n--
		}
		b = append(b, digits[:n]...)
	}
	return append(b, 'Z', '"'), nil
}

func append2Digits(b []byte, v int) []byte {
	return append(b, byte('0'+v/10), byte('0'+v%10))
}

func append4Digits(b []byte, v int) []byte {
	return append(b, byte('0'+v/1000), byte('0'+v/100%10), byte('0'+v/10%10), byte('0'+v%10))
}

// appendJSONFloat appends a float64 with encoding/json's exact formatting
// rules (shortest representation, 'e' form outside [1e-6, 1e21), with the
// two-digit negative exponent contraction).
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("unsupported float value %v", f)
	}
	// Integral values below 2^53 print as plain digit runs in the
	// shortest 'f' form; skip the Ryu machinery for them.
	if i := int64(f); float64(i) == f && (i > -1e15 && i < 1e15) && !(i == 0 && math.Signbit(f)) {
		return strconv.AppendInt(b, i, 10), nil
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	n := len(b)
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans up e-09 to e-9.
		if m := len(b); m-n >= 4 && b[m-4] == 'e' && b[m-3] == '-' && b[m-2] == '0' {
			b[m-2] = b[m-1]
			b = b[:m-1]
		}
	}
	return b, nil
}

const hexDigits = "0123456789abcdef"

// jsonSafe marks ASCII bytes that pass through the HTML-escaping encoder
// unmodified: printable characters except `"` `\` `<` `>` `&`.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		t[c] = c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
	}
	return
}()

// appendJSONString appends a quoted, escaped string with encoding/json's
// default (HTML-escaping) rules: printable ASCII except `"` `\` `<` `>`
// `&` passes through, \n \r \t use short escapes, other control bytes and
// the HTML characters become \u00xx, U+2028/U+2029 are escaped, and
// invalid UTF-8 becomes �.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// parseJob decodes one canonical job line — the exact shape appendJob
// emits — into j. It reports false (leaving j in an undefined state) for
// anything else: unknown fields, escape sequences, whitespace, null,
// non-canonical numbers. Callers then retry with encoding/json so the
// semantics of unusual-but-valid input match the standard library.
func parseJob(line []byte, j *Job) bool {
	i := 0
	if len(line) == 0 || line[i] != '{' {
		return false
	}
	i++
	first := true
	for {
		if i >= len(line) {
			return false
		}
		if line[i] == '}' {
			return i+1 == len(line)
		}
		if !first {
			if line[i] != ',' {
				return false
			}
			i++
		}
		first = false
		key, n := scanKey(line[i:])
		if n == 0 {
			return false
		}
		i += n
		var ok bool
		switch string(key) {
		case "id":
			j.ID, i, ok = scanInt(line, i)
		case "name":
			j.Name, i, ok = scanString(line, i)
		case "submit_time":
			var s string
			s, i, ok = scanString(line, i)
			if ok {
				var err error
				j.SubmitTime, err = time.Parse(time.RFC3339Nano, s)
				ok = err == nil
			}
		case "duration":
			var v int64
			v, i, ok = scanInt(line, i)
			j.Duration = time.Duration(v)
		case "input_bytes":
			var v int64
			v, i, ok = scanInt(line, i)
			j.InputBytes = units.Bytes(v)
		case "shuffle_bytes":
			var v int64
			v, i, ok = scanInt(line, i)
			j.ShuffleBytes = units.Bytes(v)
		case "output_bytes":
			var v int64
			v, i, ok = scanInt(line, i)
			j.OutputBytes = units.Bytes(v)
		case "map_time":
			var v float64
			v, i, ok = scanFloat(line, i)
			j.MapTime = units.TaskSeconds(v)
		case "reduce_time":
			var v float64
			v, i, ok = scanFloat(line, i)
			j.ReduceTime = units.TaskSeconds(v)
		case "map_tasks":
			var v int64
			v, i, ok = scanInt(line, i)
			if v > math.MaxInt32 || v < math.MinInt32 {
				// Be conservative about platform int width.
				ok = false
			}
			j.MapTasks = int(v)
		case "reduce_tasks":
			var v int64
			v, i, ok = scanInt(line, i)
			if v > math.MaxInt32 || v < math.MinInt32 {
				ok = false
			}
			j.ReduceTasks = int(v)
		case "input_path":
			j.InputPath, i, ok = scanString(line, i)
		case "output_path":
			j.OutputPath, i, ok = scanString(line, i)
		default:
			return false
		}
		if !ok {
			return false
		}
	}
}

// scanKey matches `"key":` with no escapes and returns the key bytes and
// the number of bytes consumed (0 on mismatch).
func scanKey(b []byte) (key []byte, n int) {
	if len(b) == 0 || b[0] != '"' {
		return nil, 0
	}
	for i := 1; i < len(b); i++ {
		switch c := b[i]; {
		case c == '"':
			if i+1 >= len(b) || b[i+1] != ':' {
				return nil, 0
			}
			return b[1:i], i + 2
		case c == '\\' || c < 0x20:
			return nil, 0
		}
	}
	return nil, 0
}

// scanTokenEnd returns the index of the byte ending a number token: the
// next ',' or '}' at this nesting level (numbers contain neither).
func scanTokenEnd(line []byte, i int) int {
	for ; i < len(line); i++ {
		if line[i] == ',' || line[i] == '}' {
			return i
		}
	}
	return i
}

// scanInt parses a canonical JSON integer at line[i:], returning the
// value and the index past the token.
func scanInt(line []byte, i int) (int64, int, bool) {
	end := scanTokenEnd(line, i)
	tok := line[i:end]
	if len(tok) == 0 {
		return 0, end, false
	}
	neg := false
	k := 0
	if tok[0] == '-' {
		neg = true
		k = 1
		if len(tok) == 1 {
			return 0, end, false
		}
	}
	if tok[k] == '0' && len(tok) > k+1 {
		return 0, end, false // leading zeros are not canonical
	}
	var v uint64
	for ; k < len(tok); k++ {
		c := tok[k]
		if c < '0' || c > '9' {
			return 0, end, false
		}
		if v > (math.MaxUint64-9)/10 {
			return 0, end, false
		}
		v = v*10 + uint64(c-'0')
	}
	if neg {
		if v > uint64(math.MaxInt64)+1 {
			return 0, end, false
		}
		return -int64(v), end, true
	}
	if v > math.MaxInt64 {
		return 0, end, false
	}
	return int64(v), end, true
}

// scanFloat parses a JSON number at line[i:]. The token must satisfy the
// JSON number grammar (so strconv extensions like hex floats, "Inf", and
// "NaN" never sneak past encoding/json semantics).
func scanFloat(line []byte, i int) (float64, int, bool) {
	end := scanTokenEnd(line, i)
	tok := line[i:end]
	if !validJSONNumber(tok) {
		return 0, end, false
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, end, false
	}
	return v, end, true
}

// validJSONNumber reports whether tok matches RFC 8259's number grammar.
func validJSONNumber(tok []byte) bool {
	i := 0
	if i < len(tok) && tok[i] == '-' {
		i++
	}
	// Integer part: "0" or [1-9][0-9]*.
	switch {
	case i < len(tok) && tok[i] == '0':
		i++
	case i < len(tok) && tok[i] >= '1' && tok[i] <= '9':
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	return i == len(tok)
}

// scanString parses a canonical (escape-free, valid-UTF-8) JSON string at
// line[i:]. Strings containing backslashes, control bytes, or invalid
// UTF-8 are routed to the encoding/json fallback, which owns the
// unescaping and sanitization semantics.
func scanString(line []byte, i int) (string, int, bool) {
	if i >= len(line) || line[i] != '"' {
		return "", i, false
	}
	for k := i + 1; k < len(line); k++ {
		switch c := line[k]; {
		case c == '"':
			content := line[i+1 : k]
			if !utf8.Valid(content) {
				return "", i, false
			}
			return string(content), k + 1, true
		case c == '\\' || c < 0x20:
			return "", i, false
		}
	}
	return "", i, false
}
