package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

// trickyJobs exercises every encoder edge the hand-rolled codec must
// reproduce byte-for-byte: omitted fields, HTML-escaped and non-ASCII
// names, control characters, invalid UTF-8, float formats across the
// 'f'/'e' switchover, and fractional-second timestamps.
func trickyJobs() []*Job {
	base := func() *Job { return mkJob(1, 0) }
	var jobs []*Job
	add := func(mut func(*Job)) {
		j := base()
		mut(j)
		jobs = append(jobs, j)
	}
	add(func(j *Job) {})
	add(func(j *Job) { j.Name, j.InputPath, j.OutputPath = "", "", "" })
	add(func(j *Job) { j.Name = `quo"te\back` })
	add(func(j *Job) { j.Name = "a<b>&c" })
	add(func(j *Job) { j.Name = "tab\there\nnew\rline" })
	add(func(j *Job) { j.Name = "ctrl\x01\x1fbyte" })
	add(func(j *Job) { j.Name = "bad\xffutf8\xc3" })
	add(func(j *Job) { j.Name = "uniécode 世界" })
	add(func(j *Job) { j.Name = "line sep par" })
	add(func(j *Job) { j.InputPath = "/päth/with spaces/&x" })
	add(func(j *Job) { j.MapTime = 0.1234567890123 })
	add(func(j *Job) { j.MapTime = 1e-7 })   // 'e' format, negative exponent trim
	add(func(j *Job) { j.MapTime = 2.5e21 }) // 'e' format, positive exponent
	add(func(j *Job) { j.MapTime = 1e21 })
	add(func(j *Job) { j.ReduceTime = units.TaskSeconds(math.MaxFloat64) })
	add(func(j *Job) { j.ReduceTime = 1e-9 })
	add(func(j *Job) { j.MapTime = units.TaskSeconds(math.Copysign(0, -1)) }) // -0.0 prints as "-0"
	add(func(j *Job) { j.MapTime = 9.007199254740993e15 })                    // above the integral fast path
	add(func(j *Job) { j.Duration = -5 * time.Second })
	add(func(j *Job) { j.ID = math.MaxInt64; j.InputBytes = math.MaxInt64 })
	add(func(j *Job) { j.ID = math.MinInt64; j.OutputBytes = units.Bytes(math.MinInt64) })
	add(func(j *Job) { j.SubmitTime = time.Date(2009, 5, 4, 1, 2, 3, 123456789, time.UTC) })
	add(func(j *Job) { j.SubmitTime = time.Date(2009, 5, 4, 1, 2, 3, 120000000, time.UTC) })
	add(func(j *Job) { j.SubmitTime = time.Date(1, 1, 1, 0, 0, 0, 0, time.UTC) })
	add(func(j *Job) {
		j.SubmitTime = time.Date(2009, 5, 4, 1, 2, 3, 0, time.FixedZone("plus7", 7*3600))
	})
	return jobs
}

// TestAppendJobMatchesEncodingJSON pins the hand-rolled encoder to
// encoding/json's output byte for byte, which is what keeps the file
// format stable across the codec swap.
func TestAppendJobMatchesEncodingJSON(t *testing.T) {
	for i, j := range trickyJobs() {
		want, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("job %d: json.Marshal: %v", i, err)
		}
		// json.Encoder (the v1 writer) appends a newline after each value
		// and HTML-escapes by default, exactly like json.Marshal +
		// SetEscapeHTML(true). Reproduce the Encoder path precisely.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(j); err != nil {
			t.Fatalf("job %d: Encode: %v", i, err)
		}
		want = buf.Bytes()
		got, err := appendJob(nil, j)
		if err != nil {
			t.Fatalf("job %d: appendJob: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("job %d: encoding mismatch\n got: %q\nwant: %q", i, got, want)
		}
	}
}

// TestAppendJobRejectsUnrepresentable matches encoding/json's refusal to
// encode NaN/Inf task-times and out-of-range years.
func TestAppendJobRejectsUnrepresentable(t *testing.T) {
	j := mkJob(1, 0)
	j.MapTime = units.TaskSeconds(math.NaN())
	if _, err := appendJob(nil, j); err == nil {
		t.Error("NaN map_time should fail to encode")
	}
	j = mkJob(1, 0)
	j.ReduceTime = units.TaskSeconds(math.Inf(1))
	if _, err := appendJob(nil, j); err == nil {
		t.Error("Inf reduce_time should fail to encode")
	}
	j = mkJob(1, 0)
	j.SubmitTime = time.Date(10001, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := appendJob(nil, j); err == nil {
		t.Error("year 10001 should fail to encode")
	}
}

// TestParseJobFastPathRoundTrip checks decode(encode(j)) == j through the
// fast path for every tricky job.
func TestParseJobFastPathRoundTrip(t *testing.T) {
	tr := New(Meta{Name: "tricky", Machines: 3, Start: t0, Length: 2 * time.Hour})
	for i, j := range trickyJobs() {
		j.ID = int64(i + 1)
		tr.Add(j)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// encode∘decode reaches a fixed point after one application (the
	// invalid-UTF-8 name is escaped as � on first encode but decodes
	// to a real U+FFFD rune, which thereafter passes through literally —
	// encoding/json behaves identically).
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, back); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadJSONL(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := WriteJSONL(&buf3, back2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Error("encode(decode(x)) is not byte-stable")
	}
	tracesEqual(t, back, mustReadStd(t, buf.Bytes()))
}

// mustReadStd decodes a JSONL trace purely with encoding/json — the v1
// reference decoder — for cross-checking the fast path.
func mustReadStd(t *testing.T, data []byte) *Trace {
	t.Helper()
	tr, err := readJSONLStd(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestParseJobFallback feeds the decoder valid-but-non-canonical lines
// (unknown fields, whitespace, escapes, reordered keys) and checks they
// load via the encoding/json fallback with correct values — the "v1
// files with extra fields still load" contract.
func TestParseJobFallback(t *testing.T) {
	hdr := `{"format":"swim-trace-v1","name":"x","machines":1,"start_unix":0,"length_ms":3600000}`
	lines := []string{
		// Unknown field from a future schema version.
		`{"id":7,"submit_time":"2011-03-01T00:00:00Z","duration":1000000000,"input_bytes":5,"shuffle_bytes":0,"output_bytes":1,"map_time":2,"reduce_time":0,"map_tasks":1,"reduce_tasks":0,"queue":"default"}`,
		// Whitespace and reordered keys.
		`{ "submit_time": "2011-03-01T00:00:00Z", "id": 7, "input_bytes": 5 }`,
		// Escaped string content.
		`{"id":7,"name":"escaped","submit_time":"2011-03-01T00:00:00Z"}`,
		// Float written in exponent form for an integer field's sibling.
		`{"id":7,"map_time":1.5e2,"submit_time":"2011-03-01T00:00:00Z"}`,
	}
	for i, line := range lines {
		in := hdr + "\n" + line + "\n"
		tr, err := ReadJSONL(strings.NewReader(in))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if tr.Len() != 1 || tr.Jobs[0].ID != 7 {
			t.Fatalf("line %d: got %d jobs, want 1 with ID 7", i, tr.Len())
		}
	}
	// The escaped name must be unescaped by the fallback.
	tr, err := ReadJSONL(strings.NewReader(hdr + "\n" + lines[2] + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Name != "escaped" {
		t.Errorf("escaped name = %q, want %q", tr.Jobs[0].Name, "escaped")
	}
	// map_time from the exponent-form line.
	tr, err = ReadJSONL(strings.NewReader(hdr + "\n" + lines[3] + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].MapTime != 150 {
		t.Errorf("map_time = %v, want 150", tr.Jobs[0].MapTime)
	}
}

// TestReadJSONLLongLine is the regression test for the 4 MiB
// bufio.Scanner line cap: a single job whose name is far larger than the
// old limit must round-trip.
func TestReadJSONLLongLine(t *testing.T) {
	tr := New(Meta{Name: "long", Machines: 1, Start: t0, Length: time.Hour})
	j := mkJob(1, 0)
	j.Name = strings.Repeat("n", 6<<20) // 6 MiB, beyond the old 4 MiB cap
	tr.Add(j)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("long line failed to load: %v", err)
	}
	if back.Len() != 1 || len(back.Jobs[0].Name) != 6<<20 {
		t.Fatalf("long name lost: %d jobs, name len %d", back.Len(), len(back.Jobs[0].Name))
	}
	// The old implementation failed here with "bufio.Scanner: token too
	// long"; make sure that failure mode is gone for good.
	if _, err := readJSONLStd(bytes.NewReader(buf.Bytes())); err == nil {
		t.Log("note: reference scanner decoder now handles long lines too")
	}
}

// TestReadJSONLNoTrailingNewline accepts a final unterminated line.
func TestReadJSONLNoTrailingNewline(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(buf.Bytes(), "\n")
	back, err := ReadJSONL(bytes.NewReader(trimmed))
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, back)
}

// TestScanHelpers covers the token scanners' reject paths directly.
func TestScanHelpers(t *testing.T) {
	badInts := []string{"", "-", "01", "1.5", "1e3", "a", "9223372036854775808", "-9223372036854775809", "18446744073709551616", "99999999999999999999999"}
	for _, s := range badInts {
		if v, _, ok := scanInt([]byte(s+","), 0); ok {
			t.Errorf("scanInt(%q) accepted as %d", s, v)
		}
	}
	if v, _, ok := scanInt([]byte("-9223372036854775808}"), 0); !ok || v != math.MinInt64 {
		t.Errorf("scanInt(MinInt64) = %d, %v", v, ok)
	}
	badFloats := []string{"NaN", "Inf", "+1", "0x1p2", "1_000", ".5", "1.", "1e", "1e+", "--1"}
	for _, s := range badFloats {
		if _, _, ok := scanFloat([]byte(s+","), 0); ok {
			t.Errorf("scanFloat(%q) accepted", s)
		}
	}
	goodFloats := map[string]float64{"0": 0, "-0.5": -0.5, "1e3": 1000, "2.5E-2": 0.025, "123.456": 123.456}
	for s, want := range goodFloats {
		v, _, ok := scanFloat([]byte(s+"}"), 0)
		if !ok || v != want {
			t.Errorf("scanFloat(%q) = %v, %v; want %v", s, v, ok, want)
		}
	}
	if _, _, ok := scanString([]byte(`"has\\escape"`), 0); ok {
		t.Error("scanString accepted an escape sequence")
	}
	if _, _, ok := scanString([]byte("\"ctrl\x01\""), 0); ok {
		t.Error("scanString accepted a control byte")
	}
	if _, _, ok := scanString([]byte("\"bad\xff\""), 0); ok {
		t.Error("scanString accepted invalid UTF-8")
	}
	if s, n, ok := scanString([]byte(`"ok"`), 0); !ok || s != "ok" || n != 4 {
		t.Errorf("scanString = %q, %d, %v", s, n, ok)
	}
}

// TestJSONLReaderStreams verifies Source semantics: meta up front, jobs
// in order, io.EOF at the end.
func TestJSONLReaderStreams(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	src, err := NewJSONLReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m := src.Meta(); m.Name != tr.Meta.Name || m.Machines != tr.Meta.Machines {
		t.Fatalf("meta = %+v, want %+v", m, tr.Meta)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
}

// readJSONLStd is the v1 decoder (bufio.Scanner + encoding/json), kept as
// the reference implementation for equivalence tests and the decode
// benchmark baseline.
func readJSONLStd(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: parsing header: %w", err)
	}
	if hdr.Format != jsonlFormat {
		return nil, fmt.Errorf("trace: unknown format %q", hdr.Format)
	}
	t := New(Meta{
		Name:     hdr.Name,
		Machines: hdr.Machines,
		Start:    time.UnixMilli(hdr.Start).UTC(),
		Length:   time.Duration(hdr.LengthMS) * time.Millisecond,
	})
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Jobs = append(t.Jobs, &j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning: %w", err)
	}
	return t, nil
}

// writeJSONLStd is the v1 encoder (json.Encoder per record), kept as the
// encode benchmark baseline.
func writeJSONLStd(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	hdr := jsonlHeader{
		Format:   jsonlFormat,
		Name:     t.Meta.Name,
		Machines: t.Meta.Machines,
		Start:    t.Meta.Start.UnixMilli(),
		LengthMS: t.Meta.Length.Milliseconds(),
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, j := range t.Jobs {
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("trace: writing job %d: %w", j.ID, err)
		}
	}
	return bw.Flush()
}

// TestWriteJSONLMatchesStd locks the whole-file output of the new writer
// to the v1 writer.
func TestWriteJSONLMatchesStd(t *testing.T) {
	tr := sampleTrace()
	var fast, std bytes.Buffer
	if err := WriteJSONL(&fast, tr); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONLStd(&std, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast.Bytes(), std.Bytes()) {
		t.Error("WriteJSONL output differs from the encoding/json baseline")
	}
}
