package trace

import (
	"testing"
	"time"

	"repro/internal/units"
)

var t0 = time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)

func mkJob(id int64, offset time.Duration) *Job {
	return &Job{
		ID:           id,
		Name:         "insert",
		SubmitTime:   t0.Add(offset),
		Duration:     30 * time.Second,
		InputBytes:   100 * units.MB,
		ShuffleBytes: 10 * units.MB,
		OutputBytes:  1 * units.MB,
		MapTime:      120,
		ReduceTime:   40,
		MapTasks:     4,
		ReduceTasks:  1,
		InputPath:    "/data/in",
		OutputPath:   "/data/out",
	}
}

func TestJobDerived(t *testing.T) {
	j := mkJob(1, 0)
	if got := j.TotalBytes(); got != 111*units.MB {
		t.Errorf("TotalBytes = %v, want 111 MB", got)
	}
	if got := j.TotalTaskTime(); got != 160 {
		t.Errorf("TotalTaskTime = %v, want 160", got)
	}
	if j.MapOnly() {
		t.Error("job with reduce should not be map-only")
	}
	mo := &Job{ID: 2, SubmitTime: t0, MapTasks: 3, MapTime: 10}
	if !mo.MapOnly() {
		t.Error("job without reduce should be map-only")
	}
	if got := j.FinishTime(); !got.Equal(t0.Add(30 * time.Second)) {
		t.Errorf("FinishTime = %v", got)
	}
	f := j.Features()
	if len(f) != 6 {
		t.Fatalf("Features len = %d, want 6", len(f))
	}
	if f[0] != 1e8 || f[3] != 30 || f[5] != 40 {
		t.Errorf("Features = %v", f)
	}
}

func TestJobValidate(t *testing.T) {
	good := mkJob(1, 0)
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"negative id", func(j *Job) { j.ID = -1 }},
		{"negative input", func(j *Job) { j.InputBytes = -1 }},
		{"negative shuffle", func(j *Job) { j.ShuffleBytes = -1 }},
		{"negative output", func(j *Job) { j.OutputBytes = -1 }},
		{"negative duration", func(j *Job) { j.Duration = -time.Second }},
		{"negative map time", func(j *Job) { j.MapTime = -1 }},
		{"negative reduce time", func(j *Job) { j.ReduceTime = -1 }},
		{"negative map tasks", func(j *Job) { j.MapTasks = -1 }},
		{"negative reduce tasks", func(j *Job) { j.ReduceTasks = -1 }},
		{"zero submit", func(j *Job) { j.SubmitTime = time.Time{} }},
	}
	for _, c := range cases {
		j := mkJob(1, 0)
		c.mut(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestTraceSortAndValidate(t *testing.T) {
	tr := New(Meta{Name: "test", Machines: 10, Start: t0, Length: time.Hour})
	tr.Add(mkJob(3, 2*time.Minute))
	tr.Add(mkJob(1, 0))
	tr.Add(mkJob(2, time.Minute))
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace should fail validation")
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Errorf("sorted trace failed validation: %v", err)
	}
	if tr.Jobs[0].ID != 1 || tr.Jobs[2].ID != 3 {
		t.Error("Sort did not order by submit time")
	}
}

func TestTraceSortTieBreak(t *testing.T) {
	tr := New(Meta{Name: "t", Start: t0})
	tr.Add(mkJob(5, 0))
	tr.Add(mkJob(2, 0))
	tr.Sort()
	if tr.Jobs[0].ID != 2 {
		t.Error("ties should break by ID")
	}
}

func TestTraceValidateErrors(t *testing.T) {
	tr := New(Meta{})
	if err := tr.Validate(); err == nil {
		t.Error("missing name should fail")
	}
	tr = New(Meta{Name: "x"})
	tr.Jobs = append(tr.Jobs, nil)
	if err := tr.Validate(); err == nil {
		t.Error("nil job should fail")
	}
}

func TestWindow(t *testing.T) {
	tr := New(Meta{Name: "test", Start: t0, Length: 3 * time.Hour})
	for i := 0; i < 180; i++ {
		tr.Add(mkJob(int64(i), time.Duration(i)*time.Minute))
	}
	w := tr.Window(t0.Add(time.Hour), time.Hour)
	if w.Len() != 60 {
		t.Errorf("window has %d jobs, want 60", w.Len())
	}
	for _, j := range w.Jobs {
		if j.SubmitTime.Before(t0.Add(time.Hour)) || !j.SubmitTime.Before(t0.Add(2*time.Hour)) {
			t.Fatalf("job %d outside window", j.ID)
		}
	}
	if w.Meta.Length != time.Hour {
		t.Errorf("window meta length = %v", w.Meta.Length)
	}
}

func TestFilter(t *testing.T) {
	tr := New(Meta{Name: "test", Start: t0})
	for i := 0; i < 10; i++ {
		j := mkJob(int64(i), time.Duration(i)*time.Second)
		if i%2 == 0 {
			j.ReduceTasks, j.ReduceTime, j.ShuffleBytes = 0, 0, 0
		}
		tr.Add(j)
	}
	mapOnly := tr.Filter(func(j *Job) bool { return j.MapOnly() })
	if mapOnly.Len() != 5 {
		t.Errorf("filtered %d jobs, want 5", mapOnly.Len())
	}
}

func TestSpan(t *testing.T) {
	tr := New(Meta{Name: "test", Start: t0})
	start, end := tr.Span()
	if !start.IsZero() || !end.IsZero() {
		t.Error("empty trace span should be zero")
	}
	tr.Add(mkJob(1, 0))
	tr.Add(mkJob(2, 10*time.Minute))
	start, end = tr.Span()
	if !start.Equal(t0) {
		t.Errorf("span start = %v", start)
	}
	if !end.Equal(t0.Add(10*time.Minute + 30*time.Second)) {
		t.Errorf("span end = %v", end)
	}
}

func TestSummarize(t *testing.T) {
	tr := New(Meta{Name: "CC-x", Machines: 100, Start: t0, Length: 24 * time.Hour})
	tr.Add(mkJob(1, 0))
	tr.Add(mkJob(2, time.Hour))
	s := tr.Summarize()
	if s.Name != "CC-x" || s.Machines != 100 || s.Jobs != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.BytesMoved != 222*units.MB {
		t.Errorf("BytesMoved = %v, want 222 MB", s.BytesMoved)
	}
}

func TestHasFields(t *testing.T) {
	tr := New(Meta{Name: "x", Start: t0})
	if tr.HasPaths() || tr.HasNames() || tr.HasOutputPaths() {
		t.Error("empty trace should have no fields")
	}
	j := mkJob(1, 0)
	j.InputPath, j.OutputPath, j.Name = "", "", ""
	tr.Add(j)
	if tr.HasPaths() || tr.HasNames() || tr.HasOutputPaths() {
		t.Error("fieldless job should not set flags")
	}
	j2 := mkJob(2, time.Second)
	j2.OutputPath = ""
	tr.Add(j2)
	if !tr.HasPaths() || !tr.HasNames() {
		t.Error("flags should detect populated fields")
	}
	if tr.HasOutputPaths() {
		t.Error("no output paths present")
	}
}
