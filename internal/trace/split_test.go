package trace

import (
	"io"
	"testing"
	"time"
)

func splitFixture(n int) *Trace {
	start := time.Date(2009, 5, 1, 0, 0, 0, 0, time.UTC)
	t := New(Meta{Name: "split-test", Machines: 10, Start: start, Length: 48 * time.Hour})
	for i := 0; i < n; i++ {
		t.Add(&Job{
			ID:         int64(i),
			SubmitTime: start.Add(time.Duration(i) * time.Minute),
			Duration:   time.Minute,
			InputBytes: 100,
		})
	}
	return t
}

func drain(t *testing.T, src Source) []*Job {
	t.Helper()
	var out []*Job
	for {
		j, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, j)
	}
}

// TestSplitTraceContiguousOrdered: the shards are a contiguous ordered
// partition — concatenating them in shard order reproduces the original
// job sequence exactly, sizes differ by at most one, and every shard
// carries the parent metadata.
func TestSplitTraceContiguousOrdered(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 101} {
		tr := splitFixture(n)
		for _, k := range []int{1, 2, 3, 5, 16} {
			shards, err := SplitTrace(tr, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != k {
				t.Fatalf("n=%d k=%d: got %d shards", n, k, len(shards))
			}
			var all []*Job
			min, max := n, 0
			for _, sh := range shards {
				if sh.Meta() != tr.Meta {
					t.Fatalf("n=%d k=%d: shard meta %+v != trace meta %+v", n, k, sh.Meta(), tr.Meta)
				}
				jobs := drain(t, sh)
				if len(jobs) < min {
					min = len(jobs)
				}
				if len(jobs) > max {
					max = len(jobs)
				}
				all = append(all, jobs...)
			}
			if len(all) != n {
				t.Fatalf("n=%d k=%d: concatenated %d jobs", n, k, len(all))
			}
			for i, j := range all {
				if j != tr.Jobs[i] {
					t.Fatalf("n=%d k=%d: job %d out of order (got ID %d, want %d)", n, k, i, j.ID, tr.Jobs[i].ID)
				}
			}
			if k <= n && max-min > 1 {
				t.Fatalf("n=%d k=%d: shard sizes unbalanced (min %d, max %d)", n, k, min, max)
			}
		}
	}
}

// TestSplitDrainsSource: Split on a stream materializes it once and
// shards the result, preserving metadata.
func TestSplitDrainsSource(t *testing.T) {
	tr := splitFixture(10)
	shards, err := Split(NewSliceSource(tr), 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range shards {
		total += len(drain(t, sh))
	}
	if total != 10 {
		t.Fatalf("shards hold %d jobs, want 10", total)
	}
}

// TestSplitRejectsBadShardCount: k < 1 is a programmer error reported
// as such.
func TestSplitRejectsBadShardCount(t *testing.T) {
	tr := splitFixture(3)
	if _, err := SplitTrace(tr, 0); err == nil {
		t.Fatal("SplitTrace(t, 0) did not error")
	}
	if _, err := Split(NewSliceSource(tr), -1); err == nil {
		t.Fatal("Split(src, -1) did not error")
	}
}

// TestSummaryAccumulatorMerge: shard summaries merge to exactly the
// whole-trace summary, and summaries of different traces refuse.
func TestSummaryAccumulatorMerge(t *testing.T) {
	tr := splitFixture(25)
	shards, err := SplitTrace(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	accs := make([]*SummaryAccumulator, len(shards))
	for i, sh := range shards {
		accs[i] = NewSummaryAccumulator(sh.Meta())
		for _, j := range drain(t, sh) {
			accs[i].Observe(j)
		}
	}
	merged := accs[0]
	for _, a := range accs[1:] {
		if err := merged.Merge(a); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := merged.Summary(), tr.Summarize(); got != want {
		t.Fatalf("merged summary %+v != sequential %+v", got, want)
	}

	other := NewSummaryAccumulator(Meta{Name: "other", Length: time.Hour})
	if err := merged.Merge(other); err == nil {
		t.Fatal("merging summaries of different traces did not error")
	}
}
