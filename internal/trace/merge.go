package trace

import (
	"errors"
	"fmt"
	"time"
)

// Merge consolidates several workloads onto one logical cluster, aligning
// all traces to the earliest start. Section 5 frames consolidation as a
// key workload-management question, and §5.2 observes its effect at
// Facebook: "multiplexing many workloads (workloads from many
// organizations) help decrease burstiness" — the 2010 trace's
// peak-to-median fell to 9:1 as more organizations shared the cluster.
// Merging traces lets that claim be tested directly: the merged trace's
// burstiness should fall below the population-weighted burstiness of its
// parts.
//
// Jobs keep their dimensions; IDs are renumbered; paths are prefixed with
// the source workload name so file populations stay disjoint (different
// organizations do not share datasets). Machines are summed, modeling a
// consolidated cluster sized for the union.
func Merge(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) < 2 {
		return nil, errors.New("trace: merge needs at least two traces")
	}
	var start time.Time
	var length time.Duration
	machines := 0
	total := 0
	for i, t := range traces {
		if t == nil || t.Len() == 0 {
			return nil, fmt.Errorf("trace: merge input %d is empty", i)
		}
		if i == 0 || t.Meta.Start.Before(start) {
			start = t.Meta.Start
		}
		if t.Meta.Length > length {
			length = t.Meta.Length
		}
		machines += t.Meta.Machines
		total += t.Len()
	}
	out := New(Meta{Name: name, Machines: machines, Start: start, Length: length})
	out.Jobs = make([]*Job, 0, total)
	for _, t := range traces {
		// Align each trace's own start to the merged start so weekly
		// structure overlays rather than concatenates.
		shift := start.Sub(t.Meta.Start)
		prefix := "/" + t.Meta.Name
		for _, j := range t.Jobs {
			nj := *j
			nj.SubmitTime = j.SubmitTime.Add(shift)
			if nj.InputPath != "" {
				nj.InputPath = prefix + nj.InputPath
			}
			if nj.OutputPath != "" {
				nj.OutputPath = prefix + nj.OutputPath
			}
			out.Jobs = append(out.Jobs, &nj)
		}
	}
	out.Sort()
	for i, j := range out.Jobs {
		j.ID = int64(i + 1)
	}
	return out, nil
}
