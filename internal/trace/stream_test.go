package trace

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestSliceSourceAndCollect(t *testing.T) {
	tr := sampleTrace()
	src := NewSliceSource(tr)
	if src.Meta() != tr.Meta {
		t.Fatalf("meta = %+v, want %+v", src.Meta(), tr.Meta)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
	// Exhausted source keeps returning io.EOF.
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("Next after exhaustion = %v, want io.EOF", err)
	}
}

func TestCopyJSONLSink(t *testing.T) {
	tr := sampleTrace()
	var direct, streamed bytes.Buffer
	if err := WriteJSONL(&direct, tr); err != nil {
		t.Fatal(err)
	}
	sink := NewJSONLWriter(&streamed)
	n, err := Copy(sink, NewSliceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Errorf("copied %d jobs, want %d", n, tr.Len())
	}
	if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
		t.Error("streamed JSONL differs from materialized WriteJSONL")
	}
}

func TestCopyCSVSink(t *testing.T) {
	tr := sampleTrace()
	var direct, streamed bytes.Buffer
	if err := WriteCSV(&direct, tr); err != nil {
		t.Fatal(err)
	}
	sink := NewCSVWriter(&streamed)
	if _, err := Copy(sink, NewSliceSource(tr)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
		t.Error("streamed CSV differs from materialized WriteCSV")
	}
}

func TestCSVReaderStreams(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVReader(bytes.NewReader(buf.Bytes()), tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
}

func TestCollectSink(t *testing.T) {
	tr := sampleTrace()
	var cs CollectSink
	if _, err := Copy(&cs, NewSliceSource(tr)); err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, cs.Trace())
}

func TestSinkUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	if err := jw.Write(mkJob(1, 0)); err == nil {
		t.Error("JSONL Write before Begin should error")
	}
	if err := jw.Begin(Meta{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := jw.Begin(Meta{Name: "x"}); err == nil {
		t.Error("second JSONL Begin should error")
	}
	cw := NewCSVWriter(&buf)
	if err := cw.Write(mkJob(1, 0)); err == nil {
		t.Error("CSV Write before Begin should error")
	}
	if err := cw.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Begin(Meta{}); err == nil {
		t.Error("second CSV Begin should error")
	}
}

func TestSummaryAccumulatorMatchesSummarize(t *testing.T) {
	tr := sampleTrace()
	acc := NewSummaryAccumulator(tr.Meta)
	for _, j := range tr.Jobs {
		acc.Observe(j)
	}
	if got, want := acc.Summary(), tr.Summarize(); got != want {
		t.Errorf("accumulated summary %+v != Summarize %+v", got, want)
	}
}

func TestSummaryAccumulatorEmpty(t *testing.T) {
	meta := Meta{Name: "e", Machines: 2, Length: time.Hour}
	s := NewSummaryAccumulator(meta).Summary()
	if s.Jobs != 0 || s.BytesMoved != 0 || s.Name != "e" || s.Machines != 2 || s.Length != time.Hour {
		t.Errorf("empty summary = %+v", s)
	}
}
