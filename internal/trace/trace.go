// Package trace defines the workload trace model of §3: per-job summary
// records with the same schema as the Hadoop job-history logs the study
// analyzed — job ID, job name, input/shuffle/output data sizes, duration,
// submit time, map/reduce task time in slot-seconds, task counts, and
// input/output file paths. A Trace is an ordered collection of such records
// plus the cluster metadata Table 1 reports (machine count, trace length).
//
// Some production traces lacked fields (FB-2009 and CC-a have no paths;
// FB-2010 has input paths only; FB-2010 has no job names); the model keeps
// those fields optional so analyses can skip workloads exactly as the
// paper does.
package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/units"
)

// Job is one MapReduce job summary record. Numerical characteristics are
// the "dimensions" of the job in the paper's terminology.
type Job struct {
	// ID is the numerical job key, unique within a trace.
	ID int64 `json:"id"`
	// Name is the user-supplied or framework-generated job name string;
	// empty when the trace omits names (FB-2010).
	Name string `json:"name,omitempty"`
	// SubmitTime is when the job entered the cluster.
	SubmitTime time.Time `json:"submit_time"`
	// Duration is the job's wall-clock makespan.
	Duration time.Duration `json:"duration"`
	// InputBytes, ShuffleBytes, OutputBytes are the data sizes counted at
	// the MapReduce API, exactly as Figure 1 plots them. Map-only jobs
	// have zero shuffle bytes.
	InputBytes   units.Bytes `json:"input_bytes"`
	ShuffleBytes units.Bytes `json:"shuffle_bytes"`
	OutputBytes  units.Bytes `json:"output_bytes"`
	// MapTime and ReduceTime are task-time in slot-seconds (Table 2).
	MapTime    units.TaskSeconds `json:"map_time"`
	ReduceTime units.TaskSeconds `json:"reduce_time"`
	// MapTasks and ReduceTasks are task counts.
	MapTasks    int `json:"map_tasks"`
	ReduceTasks int `json:"reduce_tasks"`
	// InputPath and OutputPath are (hashed) HDFS paths; empty when the
	// trace does not record them.
	InputPath  string `json:"input_path,omitempty"`
	OutputPath string `json:"output_path,omitempty"`
}

// TotalBytes is the job's aggregate I/O: input + shuffle + output, the
// quantity Figure 7's second column and Table 1's "bytes moved" use.
func (j *Job) TotalBytes() units.Bytes {
	return j.InputBytes + j.ShuffleBytes + j.OutputBytes
}

// TotalTaskTime is map + reduce task-time, Figure 7's third column.
func (j *Job) TotalTaskTime() units.TaskSeconds {
	return j.MapTime + j.ReduceTime
}

// MapOnly reports whether the job has no reduce stage.
func (j *Job) MapOnly() bool {
	return j.ReduceTasks == 0 && j.ReduceTime == 0 && j.ShuffleBytes == 0
}

// FinishTime is SubmitTime + Duration. The model treats queueing delay as
// part of Duration, as the history logs do.
func (j *Job) FinishTime() time.Time {
	return j.SubmitTime.Add(j.Duration)
}

// Features returns the six-dimensional vector of §6.2 used for k-means:
// input bytes, shuffle bytes, output bytes, duration seconds, map
// task-seconds, reduce task-seconds.
func (j *Job) Features() []float64 {
	return []float64{
		float64(j.InputBytes),
		float64(j.ShuffleBytes),
		float64(j.OutputBytes),
		j.Duration.Seconds(),
		float64(j.MapTime),
		float64(j.ReduceTime),
	}
}

// FeatureNames labels Features() indices.
var FeatureNames = [6]string{"input", "shuffle", "output", "duration", "map_time", "reduce_time"}

// Validate checks internal consistency of a single record.
func (j *Job) Validate() error {
	switch {
	case j.ID < 0:
		return fmt.Errorf("trace: job %d: negative ID", j.ID)
	case j.InputBytes < 0 || j.ShuffleBytes < 0 || j.OutputBytes < 0:
		return fmt.Errorf("trace: job %d: negative data size", j.ID)
	case j.Duration < 0:
		return fmt.Errorf("trace: job %d: negative duration", j.ID)
	case j.MapTime < 0 || j.ReduceTime < 0:
		return fmt.Errorf("trace: job %d: negative task time", j.ID)
	case j.MapTasks < 0 || j.ReduceTasks < 0:
		return fmt.Errorf("trace: job %d: negative task count", j.ID)
	case j.SubmitTime.IsZero():
		return fmt.Errorf("trace: job %d: zero submit time", j.ID)
	}
	return nil
}

// Meta is the per-trace metadata of Table 1.
type Meta struct {
	// Name identifies the workload (e.g. "FB-2009", "CC-b").
	Name string `json:"name"`
	// Machines is the cluster size the trace was collected on.
	Machines int `json:"machines"`
	// Start is the trace collection start.
	Start time.Time `json:"start"`
	// Length is the trace duration.
	Length time.Duration `json:"length"`
}

// Trace is a workload: metadata plus jobs ordered by submit time.
type Trace struct {
	Meta Meta
	Jobs []*Job
}

// New creates an empty trace with the given metadata.
func New(meta Meta) *Trace {
	return &Trace{Meta: meta}
}

// Add appends a job. Callers should Sort() after bulk insertion if order
// is not already chronological.
func (t *Trace) Add(j *Job) {
	t.Jobs = append(t.Jobs, j)
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Sort orders jobs by submit time, breaking ties by ID for determinism.
func (t *Trace) Sort() {
	sort.SliceStable(t.Jobs, func(i, k int) bool {
		a, b := t.Jobs[i], t.Jobs[k]
		if !a.SubmitTime.Equal(b.SubmitTime) {
			return a.SubmitTime.Before(b.SubmitTime)
		}
		return a.ID < b.ID
	})
}

// Validate checks every record and the chronological ordering.
func (t *Trace) Validate() error {
	if t.Meta.Name == "" {
		return fmt.Errorf("trace: missing workload name")
	}
	for i, j := range t.Jobs {
		if j == nil {
			return fmt.Errorf("trace: nil job at index %d", i)
		}
		if err := j.Validate(); err != nil {
			return err
		}
		if i > 0 && j.SubmitTime.Before(t.Jobs[i-1].SubmitTime) {
			return fmt.Errorf("trace: job %d out of chronological order", j.ID)
		}
	}
	return nil
}

// Window returns a new Trace containing the jobs submitted in
// [start, start+length), sharing job pointers with the original. Window is
// how weekly views (Fig 7) and SWIM's sampled scale-down (§7) slice traces.
func (t *Trace) Window(start time.Time, length time.Duration) *Trace {
	end := start.Add(length)
	out := New(t.Meta)
	out.Meta.Start = start
	out.Meta.Length = length
	for _, j := range t.Jobs {
		if !j.SubmitTime.Before(start) && j.SubmitTime.Before(end) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// Filter returns a new Trace with the jobs for which keep returns true,
// sharing job pointers with the original.
func (t *Trace) Filter(keep func(*Job) bool) *Trace {
	out := New(t.Meta)
	for _, j := range t.Jobs {
		if keep(j) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// Span returns the time range [first submit, last finish] of the trace.
// For an empty trace it returns zero times.
func (t *Trace) Span() (start, end time.Time) {
	if len(t.Jobs) == 0 {
		return time.Time{}, time.Time{}
	}
	start = t.Jobs[0].SubmitTime
	for _, j := range t.Jobs {
		if j.SubmitTime.Before(start) {
			start = j.SubmitTime
		}
		if f := j.FinishTime(); f.After(end) {
			end = f
		}
	}
	return start, end
}

// Summary is one Table-1 row: the headline statistics of a workload.
type Summary struct {
	Name       string
	Machines   int
	Length     time.Duration
	Jobs       int
	BytesMoved units.Bytes
}

// Summarize computes the Table-1 row for the trace. "Bytes moved is
// computed by sum of input, shuffle, and output data sizes for all jobs."
func (t *Trace) Summarize() Summary {
	s := Summary{
		Name:     t.Meta.Name,
		Machines: t.Meta.Machines,
		Length:   t.Meta.Length,
		Jobs:     len(t.Jobs),
	}
	for _, j := range t.Jobs {
		s.BytesMoved += j.TotalBytes()
	}
	return s
}

// HasPaths reports whether any job in the trace carries input path
// information. The paper's Figures 2–6 are computed only over traces that
// do (§4.2: "The FB-2009 and CC-a traces do not contain path names").
func (t *Trace) HasPaths() bool {
	for _, j := range t.Jobs {
		if j.InputPath != "" {
			return true
		}
	}
	return false
}

// HasOutputPaths reports whether output path information is present
// (FB-2010 carries input paths only).
func (t *Trace) HasOutputPaths() bool {
	for _, j := range t.Jobs {
		if j.OutputPath != "" {
			return true
		}
	}
	return false
}

// HasNames reports whether job name strings are present (absent from
// FB-2010, Fig 10 caption).
func (t *Trace) HasNames() bool {
	for _, j := range t.Jobs {
		if j.Name != "" {
			return true
		}
	}
	return false
}
