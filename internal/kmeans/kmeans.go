// Package kmeans implements the clustering methodology of §6.2: jobs are
// represented as six-dimensional vectors (input, shuffle, output bytes;
// duration; map and reduce task-seconds), clustered with k-means, and k is
// chosen by incrementing until the decrease in intra-cluster (residual)
// variance shows diminishing returns — the procedure of the authors' prior
// work [17, 18] that produced Table 2.
//
// Features are log-transformed and z-score standardized before clustering:
// the raw dimensions span ten orders of magnitude, and Euclidean distance
// in raw space would be dominated entirely by the largest job.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Result describes a clustering of n points into k clusters.
type Result struct {
	// K is the number of clusters.
	K int
	// Assignments[i] is the cluster index of point i.
	Assignments []int
	// Centroids are in the standardized feature space.
	Centroids [][]float64
	// Sizes[c] is the number of points in cluster c.
	Sizes []int
	// ResidualVariance is the mean squared distance of points to their
	// centroid, in standardized space.
	ResidualVariance float64
	// Iterations actually performed.
	Iterations int
}

// Config controls clustering.
type Config struct {
	// MaxIterations bounds Lloyd iterations per run (default 100).
	MaxIterations int
	// Seed makes runs reproducible.
	Seed int64
	// Restarts runs k-means++ this many times keeping the best result
	// (default 3).
	Restarts int
}

func (c Config) withDefaults() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.Restarts <= 0 {
		c.Restarts = 3
	}
	return c
}

// Cluster runs k-means++ with Lloyd iterations on the given points (each a
// feature vector of equal length) for a fixed k.
func Cluster(points [][]float64, k int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(points); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, errors.New("kmeans: k must be >= 1")
	}
	if k > len(points) {
		return nil, fmt.Errorf("kmeans: k=%d exceeds %d points", k, len(points))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var best *Result
	for r := 0; r < cfg.Restarts; r++ {
		res := lloyd(points, k, cfg.MaxIterations, rng)
		if best == nil || res.ResidualVariance < best.ResidualVariance {
			best = res
		}
	}
	return best, nil
}

// SelectK increments k from 1 to maxK and stops when adding a cluster no
// longer reduces residual variance by at least minGain (fractionally),
// mirroring the paper's "increment k until there is diminishing return in
// the decrease of intra-cluster variance". It returns the chosen clustering.
func SelectK(points [][]float64, maxK int, minGain float64, cfg Config) (*Result, error) {
	if maxK < 1 {
		return nil, errors.New("kmeans: maxK must be >= 1")
	}
	if minGain <= 0 || minGain >= 1 {
		return nil, errors.New("kmeans: minGain must be in (0,1)")
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	prev, err := Cluster(points, 1, cfg)
	if err != nil {
		return nil, err
	}
	for k := 2; k <= maxK; k++ {
		cur, err := Cluster(points, k, cfg)
		if err != nil {
			return nil, err
		}
		if prev.ResidualVariance <= 0 {
			return prev, nil // perfect fit already
		}
		gain := (prev.ResidualVariance - cur.ResidualVariance) / prev.ResidualVariance
		if gain < minGain {
			return prev, nil
		}
		prev = cur
	}
	return prev, nil
}

// lloyd performs one k-means++ initialization followed by Lloyd iterations.
func lloyd(points [][]float64, k, maxIter int, rng *rand.Rand) *Result {
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	sizes := make([]int, k)
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					bestD = d
					bestC = c
				}
			}
			if assign[i] != bestC {
				changed = true
			}
			assign[i] = bestC
			sizes[bestC]++
		}
		// Recompute centroids.
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			for d, v := range p {
				next[c][d] += v
			}
		}
		for c := range next {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to avoid dead clusters.
				next[c] = append([]float64(nil), farthestPoint(points, centroids, assign)...)
				changed = true
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(sizes[c])
			}
		}
		centroids = next
		if !changed && iter > 0 {
			break
		}
	}
	// Residual variance.
	var ss float64
	for i, p := range points {
		ss += sqDist(p, centroids[assign[i]])
	}
	return &Result{
		K:                k,
		Assignments:      assign,
		Centroids:        centroids,
		Sizes:            sizes,
		ResidualVariance: ss / float64(len(points)),
		Iterations:       iter + 1,
	}
}

// seedPlusPlus chooses initial centroids with the k-means++ rule: each new
// centroid is drawn with probability proportional to squared distance from
// the nearest already-chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var chosen int
		if total == 0 {
			chosen = rng.Intn(len(points))
		} else {
			u := rng.Float64() * total
			var cum float64
			chosen = len(points) - 1
			for i, d := range d2 {
				cum += d
				if u < cum {
					chosen = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[chosen]...))
	}
	return centroids
}

// farthestPoint returns the point with maximum distance to its assigned
// centroid — a robust re-seed location for an emptied cluster.
func farthestPoint(points [][]float64, centroids [][]float64, assign []int) []float64 {
	bestI, bestD := 0, -1.0
	for i, p := range points {
		if d := sqDist(p, centroids[assign[i]]); d > bestD {
			bestD = d
			bestI = i
		}
	}
	return points[bestI]
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func validate(points [][]float64) error {
	if len(points) == 0 {
		return errors.New("kmeans: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return errors.New("kmeans: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("kmeans: point %d has non-finite coordinate", i)
			}
		}
	}
	return nil
}
