package kmeans

import (
	"errors"
	"math"
)

// Standardizer maps raw job feature vectors into the log-transformed,
// z-scored space that clustering runs in, and maps centroids back out so
// Table 2 can report them in natural units (bytes, seconds, task-seconds).
type Standardizer struct {
	means  []float64 // per-dimension mean of log1p(raw)
	stds   []float64 // per-dimension stddev of log1p(raw), min-clamped
	nDims  int
	fitted bool
}

// Fit learns the per-dimension transform from raw feature vectors. All
// vectors must share one dimensionality; raw values must be non-negative
// (byte counts, durations, task-seconds all are).
func (s *Standardizer) Fit(raw [][]float64) error {
	if len(raw) == 0 {
		return errors.New("kmeans: cannot fit standardizer on empty data")
	}
	s.nDims = len(raw[0])
	if s.nDims == 0 {
		return errors.New("kmeans: zero-dimensional features")
	}
	s.means = make([]float64, s.nDims)
	s.stds = make([]float64, s.nDims)
	n := float64(len(raw))
	for _, p := range raw {
		if len(p) != s.nDims {
			return errors.New("kmeans: inconsistent feature dimensionality")
		}
		for d, v := range p {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return errors.New("kmeans: features must be finite and non-negative")
			}
			s.means[d] += math.Log1p(v)
		}
	}
	for d := range s.means {
		s.means[d] /= n
	}
	for _, p := range raw {
		for d, v := range p {
			diff := math.Log1p(v) - s.means[d]
			s.stds[d] += diff * diff
		}
	}
	for d := range s.stds {
		s.stds[d] = math.Sqrt(s.stds[d] / n)
		if s.stds[d] < 1e-9 {
			// A constant dimension carries no clustering signal; clamp so
			// transform stays finite and the dimension contributes zero.
			s.stds[d] = 1
		}
	}
	s.fitted = true
	return nil
}

// Transform maps raw vectors to standardized space.
func (s *Standardizer) Transform(raw [][]float64) ([][]float64, error) {
	if !s.fitted {
		return nil, errors.New("kmeans: standardizer not fitted")
	}
	out := make([][]float64, len(raw))
	for i, p := range raw {
		if len(p) != s.nDims {
			return nil, errors.New("kmeans: inconsistent feature dimensionality")
		}
		q := make([]float64, s.nDims)
		for d, v := range p {
			q[d] = (math.Log1p(v) - s.means[d]) / s.stds[d]
		}
		out[i] = q
	}
	return out, nil
}

// Inverse maps a standardized centroid back to natural units:
// expm1(z*std + mean), the geometric-style center of the cluster.
func (s *Standardizer) Inverse(std []float64) ([]float64, error) {
	if !s.fitted {
		return nil, errors.New("kmeans: standardizer not fitted")
	}
	if len(std) != s.nDims {
		return nil, errors.New("kmeans: inconsistent feature dimensionality")
	}
	out := make([]float64, s.nDims)
	for d, z := range std {
		v := math.Expm1(z*s.stds[d] + s.means[d])
		if v < 0 {
			v = 0
		}
		out[d] = v
	}
	return out, nil
}
