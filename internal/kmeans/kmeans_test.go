package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs generates three well-separated Gaussian blobs in 2D.
func threeBlobs(nPer int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	var pts [][]float64
	var labels []int
	for c, center := range centers {
		for i := 0; i < nPer; i++ {
			pts = append(pts, []float64{
				center[0] + rng.NormFloat64(),
				center[1] + rng.NormFloat64(),
			})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestClusterSeparatesBlobs(t *testing.T) {
	pts, truth := threeBlobs(100, 1)
	res, err := Cluster(pts, 3, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || len(res.Assignments) != len(pts) {
		t.Fatalf("bad result shape: %+v", res)
	}
	// Every ground-truth blob should map to exactly one k-means cluster.
	for blob := 0; blob < 3; blob++ {
		seen := map[int]int{}
		for i, lbl := range truth {
			if lbl == blob {
				seen[res.Assignments[i]]++
			}
		}
		if len(seen) != 1 {
			t.Errorf("blob %d split across clusters: %v", blob, seen)
		}
	}
	if res.ResidualVariance > 4 {
		t.Errorf("residual variance = %v, want small for tight blobs", res.ResidualVariance)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Errorf("sizes sum to %d, want %d", total, len(pts))
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, 2, Config{}); err == nil {
		t.Error("no points should error")
	}
	if _, err := Cluster([][]float64{{1}}, 0, Config{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Cluster([][]float64{{1}}, 5, Config{}); err == nil {
		t.Error("k>n should error")
	}
	if _, err := Cluster([][]float64{{1, 2}, {1}}, 1, Config{}); err == nil {
		t.Error("ragged points should error")
	}
	if _, err := Cluster([][]float64{{math.NaN()}}, 1, Config{}); err == nil {
		t.Error("NaN should error")
	}
	if _, err := Cluster([][]float64{{}}, 1, Config{}); err == nil {
		t.Error("zero-dim should error")
	}
}

func TestClusterK1(t *testing.T) {
	pts := [][]float64{{1, 1}, {3, 3}, {5, 5}}
	res, err := Cluster(pts, 1, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids[0][0] != 3 || res.Centroids[0][1] != 3 {
		t.Errorf("k=1 centroid = %v, want mean (3,3)", res.Centroids[0])
	}
}

func TestClusterDeterministic(t *testing.T) {
	pts, _ := threeBlobs(50, 2)
	a, err := Cluster(pts, 3, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(pts, 3, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestSelectKFindsThree(t *testing.T) {
	pts, _ := threeBlobs(100, 3)
	res, err := SelectK(pts, 8, 0.25, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Errorf("SelectK chose k=%d, want 3", res.K)
	}
}

func TestSelectKErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := SelectK(pts, 0, 0.1, Config{}); err == nil {
		t.Error("maxK<1 should error")
	}
	if _, err := SelectK(pts, 2, 0, Config{}); err == nil {
		t.Error("minGain=0 should error")
	}
	if _, err := SelectK(pts, 2, 1, Config{}); err == nil {
		t.Error("minGain=1 should error")
	}
}

func TestSelectKIdenticalPoints(t *testing.T) {
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := SelectK(pts, 3, 0.1, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("identical points chose k=%d, want 1", res.K)
	}
	if res.ResidualVariance != 0 {
		t.Errorf("residual variance = %v, want 0", res.ResidualVariance)
	}
}

func TestResidualVarianceDecreasesWithK(t *testing.T) {
	pts, _ := threeBlobs(60, 4)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 5; k++ {
		res, err := Cluster(pts, k, Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidualVariance > prev+1e-9 {
			t.Errorf("residual variance increased at k=%d: %v > %v", k, res.ResidualVariance, prev)
		}
		prev = res.ResidualVariance
	}
}

func TestStandardizerRoundTrip(t *testing.T) {
	raw := [][]float64{
		{21e3, 0, 871e3, 32, 20, 0},
		{230e9, 8.8e9, 491e6, 900, 104338, 66760},
		{1.9e12, 502e6, 2.6e9, 1800, 348942, 76736},
	}
	var s Standardizer
	if err := s.Fit(raw); err != nil {
		t.Fatal(err)
	}
	std, err := s.Transform(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range std {
		back, err := s.Inverse(p)
		if err != nil {
			t.Fatal(err)
		}
		for d := range back {
			if raw[i][d] == 0 {
				if back[d] > 1e-6 {
					t.Errorf("point %d dim %d: 0 -> %v", i, d, back[d])
				}
				continue
			}
			rel := math.Abs(back[d]-raw[i][d]) / raw[i][d]
			if rel > 1e-6 {
				t.Errorf("point %d dim %d: %v -> %v (rel %v)", i, d, raw[i][d], back[d], rel)
			}
		}
	}
}

func TestStandardizerErrors(t *testing.T) {
	var s Standardizer
	if err := s.Fit(nil); err == nil {
		t.Error("fit on empty should error")
	}
	if _, err := s.Transform([][]float64{{1}}); err == nil {
		t.Error("transform before fit should error")
	}
	if err := s.Fit([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged fit should error")
	}
	if err := s.Fit([][]float64{{-1}}); err == nil {
		t.Error("negative feature should error")
	}
	if err := s.Fit([][]float64{{}}); err == nil {
		t.Error("zero-dim should error")
	}
	if err := s.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform([][]float64{{1}}); err == nil {
		t.Error("dim mismatch transform should error")
	}
	if _, err := s.Inverse([]float64{1}); err == nil {
		t.Error("dim mismatch inverse should error")
	}
}

func TestStandardizerConstantDimension(t *testing.T) {
	raw := [][]float64{{5, 0}, {50, 0}, {500, 0}}
	var s Standardizer
	if err := s.Fit(raw); err != nil {
		t.Fatal(err)
	}
	std, err := s.Transform(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range std {
		if p[1] != 0 {
			t.Errorf("constant dimension should standardize to 0, got %v", p[1])
		}
		if math.IsNaN(p[0]) || math.IsInf(p[0], 0) {
			t.Errorf("non-finite standardized value %v", p[0])
		}
	}
}

// Property: every assignment index is within [0, k), sizes are consistent.
func TestClusterInvariantsQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		pts, _ := threeBlobs(20, seed)
		res, err := Cluster(pts, k, Config{Seed: seed})
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
			counts[a]++
		}
		for c := range counts {
			if counts[c] != res.Sizes[c] {
				return false
			}
		}
		return res.ResidualVariance >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
